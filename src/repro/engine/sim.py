"""Discrete-event simulation core behind the unified ``engine.run()`` API.

This module replaces the engine's four divergent executors
(``execute_schedule`` / ``execute_online`` / ``execute_with_arrivals`` /
``execute_default_schedule``) with one event-driven core:

* a priority event queue over virtual time — job arrivals, scheduled
  power-cap (governor) changes, and deadlines, interleaved with the
  phase-boundary stepping events of the co-run ground truth;
* per-device busy state (one :class:`~repro.engine.corun.PhasedRunner`
  per processor side) with the exact same stall/power arithmetic as the
  legacy executors, so non-preemptive scenarios replay byte-identically;
* a pluggable scheduling policy consulted whenever a device is idle, with
  an optional ``on_event(sim, event)`` hook invoked at every discrete
  event — the point where mid-run rescheduling plugs in;
* mid-run preemption (:meth:`SimCore.preempt`) and CPU<->GPU migration
  (:meth:`SimCore.migrate`) under a configurable :class:`PenaltyModel`
  (checkpoint/restart cost, migration cost, post-restore warm-up
  degradation);
* deadline attributes with miss accounting
  (:attr:`ExecutionResult.violations`).

:func:`run` is the single public entry point: it takes a target (an
:class:`~repro.hardware.processor.IntegratedProcessor` or a
``SchedulingContext``), a :class:`Scenario`, and optionally a policy, and
returns an :class:`ExecutionResult`.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field, replace
from collections.abc import Callable, Mapping, Sequence

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.hardware.processor import IntegratedProcessor
from repro.units import Joules, Seconds, SecondsPerJoule, Watts
from repro.workload.program import Job
from repro.engine.corun import PhasedRunner, _pair_stalls, _segment_power
from repro.engine.events import EventKind, SimEvent
from repro.engine.tracing import (
    JobCompletion,
    PowerSegment,
    segments_energy_j,
    segments_mean_power_w,
)

#: Governor signature: (running CPU job or None, running GPU job or None) ->
#: chip frequency setting.  Consulted every time the running pair changes.
GovernorFn = Callable[[Job | None, Job | None], FrequencySetting]

#: Policy signature: (kind being filled, arrived unstarted jobs, job running
#: on the other processor or None, now) -> job to start or None (stay idle).
PolicyFn = Callable[[DeviceKind, "list[Job]", Job | None, float], Job | None]

_MAX_EVENTS = 1_000_000

#: Public alias of the per-advance event budget (used by the service layer
#: to bound a single incremental step).
MAX_EVENTS = _MAX_EVENTS

_EPS = 1e-12

#: Slack for deadline-miss accounting, coarser than the phase-progress
#: epsilon so float noise at a phase boundary never flags a miss.
_DEADLINE_EPS = 1e-9

_STUCK_DEFAULT = "policy declined to issue a job with both processors idle"


class OnlineJobSource:
    """Protocol for online (work-conserving-ish) scheduling policies.

    ``next_job`` is consulted whenever a processor goes idle.  It may return
    ``None`` to leave the processor idle until the next event, but only while
    the other processor is busy (``other_busy=True``); with both processors
    idle and jobs remaining, a job must be issued or the execution cannot
    make progress.
    """

    def next_job(
        self, kind: DeviceKind, other_job: Job | None, other_busy: bool, now_s: float
    ) -> Job | None:  # pragma: no cover - interface
        raise NotImplementedError

    def remaining(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


# ----------------------------------------------------------------------
#: Mirrors ``repro.core.objectives.MAKESPAN_ENERGY_RHO`` (the engine
#: must not import the scheduling layer).
_MAKESPAN_ENERGY_RHO: SecondsPerJoule = 1.0


# ----------------------------------------------------------------------
# Scenario description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One job of a scenario: the work plus its open-system attributes."""

    job: Job
    arrival_s: Seconds = 0.0
    deadline_s: Seconds | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"{self.job.uid}: negative arrival time")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ValueError(f"{self.job.uid}: deadline precedes arrival")


@dataclass(frozen=True)
class PenaltyModel:
    """Cost model for preemption and CPU<->GPU migration.

    ``checkpoint_s`` + ``restart_s`` of device time are paid when a
    preempted job is placed again (the device is held busy but makes no
    progress); ``migrate_s`` is added when it resumes on the *other*
    processor (state transfer).  After the penalty, the job runs degraded
    by ``warmup_factor`` (>= 1, e.g. 1.5 = 50% slower) for ``warmup_s``
    wall seconds — the cold-cache/recompile window.
    """

    checkpoint_s: Seconds = 0.0
    restart_s: Seconds = 0.0
    migrate_s: Seconds = 0.0
    warmup_s: Seconds = 0.0
    warmup_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("checkpoint_s", "restart_s", "migrate_s", "warmup_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.warmup_factor < 1.0:
            raise ValueError("warmup_factor must be >= 1 (a degradation)")

    @property
    def resume_cost_s(self) -> Seconds:
        """Device time paid on a same-device resume."""
        return self.checkpoint_s + self.restart_s


@dataclass(frozen=True)
class Scenario:
    """Declarative description of one execution for :func:`run`.

    Exactly one mode applies:

    * **fixed** — ``cpu_queue``/``gpu_queue``/``solo_tail`` given: replay
      the co-schedule (the old ``execute_schedule`` semantics).  ``jobs``
      may still carry deadlines for queue jobs (matched by uid; their
      arrival times are ignored — queue jobs are available at time zero).
    * **timeshare** — ``cpu_timeshare=True``: all CPU jobs resident at
      once under context-switch overhead, sequential GPU queue (the old
      ``execute_default_schedule`` semantics).
    * **arrivals** — otherwise: ``jobs`` arrive over time and a policy
      (or an :class:`OnlineJobSource`) places them (the old
      ``execute_with_arrivals`` / ``execute_online`` semantics).

    ``cap_changes`` schedules governor swaps at fixed virtual times (a
    power-cap trace); ``penalties`` prices preemption and migration;
    ``until_s`` bounds the run (default: run to completion).
    """

    jobs: tuple[JobSpec, ...] = ()
    cpu_queue: tuple[Job, ...] | None = None
    gpu_queue: tuple[Job, ...] | None = None
    solo_tail: tuple[tuple[Job, DeviceKind], ...] = ()
    cap_changes: tuple[tuple[float, GovernorFn], ...] = ()
    penalties: PenaltyModel = field(default_factory=PenaltyModel)
    cpu_timeshare: bool = False
    cs_overhead: float | None = None
    until_s: float = math.inf

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if self.cpu_queue is not None:
            object.__setattr__(self, "cpu_queue", tuple(self.cpu_queue))
        if self.gpu_queue is not None:
            object.__setattr__(self, "gpu_queue", tuple(self.gpu_queue))
        object.__setattr__(self, "solo_tail", tuple(self.solo_tail))
        object.__setattr__(self, "cap_changes", tuple(self.cap_changes))

    @property
    def fixed(self) -> bool:
        """True when the scenario replays a fixed co-schedule."""
        return (
            self.cpu_queue is not None
            or self.gpu_queue is not None
            or bool(self.solo_tail)
        )

    @classmethod
    def from_queues(
        cls,
        cpu_queue: Sequence[Job],
        gpu_queue: Sequence[Job],
        *,
        solo_tail: Sequence[tuple[Job, DeviceKind]] = (),
        **kwargs,
    ) -> "Scenario":
        """Fixed-schedule scenario from the two queues plus a solo tail."""
        return cls(
            cpu_queue=tuple(cpu_queue),
            gpu_queue=tuple(gpu_queue),
            solo_tail=tuple(solo_tail),
            **kwargs,
        )

    @classmethod
    def from_schedule(cls, schedule, **kwargs) -> "Scenario":
        """Fixed-schedule scenario from a ``CoSchedule``-like object."""
        return cls.from_queues(
            schedule.cpu_queue,
            schedule.gpu_queue,
            solo_tail=schedule.solo_tail,
            **kwargs,
        )

    @classmethod
    def from_arrivals(
        cls, arrivals: Sequence[tuple[Job, float]], **kwargs
    ) -> "Scenario":
        """Open-system scenario from (job, arrival time) pairs."""
        return cls(
            jobs=tuple(JobSpec(job=job, arrival_s=at_s) for job, at_s in arrivals),
            **kwargs,
        )

    @classmethod
    def timeshare(
        cls,
        cpu_jobs: Sequence[Job],
        gpu_queue: Sequence[Job],
        *,
        cs_overhead: float | None = None,
        **kwargs,
    ) -> "Scenario":
        """Default-baseline scenario: time-shared CPU side, serial GPU."""
        return cls(
            cpu_queue=tuple(cpu_jobs),
            gpu_queue=tuple(gpu_queue),
            cpu_timeshare=True,
            cs_overhead=cs_overhead,
            **kwargs,
        )


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobStart:
    """Launch record: where a job started and under what conditions."""

    job: str
    kind: DeviceKind
    start_s: float
    setting: FrequencySetting
    partner: str | None


@dataclass(frozen=True)
class DeviceInterval:
    """One contiguous occupancy of a device by a job."""

    job: str
    device: str
    t0_s: float
    t1_s: float

    @property
    def duration_s(self) -> float:
        return self.t1_s - self.t0_s

    def to_dict(self) -> dict:
        return {
            "job": self.job,
            "device": self.device,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
        }


@dataclass(frozen=True)
class PreemptionRecord:
    """One preemption: who was evicted, and how (if) it came back."""

    job: str
    from_device: str
    at_s: float
    resumed_device: str | None = None
    resumed_s: float | None = None
    penalty_s: float = 0.0
    migrated: bool = False

    def to_dict(self) -> dict:
        return {
            "job": self.job,
            "from_device": self.from_device,
            "at_s": self.at_s,
            "resumed_device": self.resumed_device,
            "resumed_s": self.resumed_s,
            "penalty_s": self.penalty_s,
            "migrated": self.migrated,
        }


@dataclass(frozen=True)
class DeadlineMiss:
    """One deadline/SLA violation.

    ``finish_s`` is ``None`` when the job had not finished by the end of
    the (bounded) run; ``lateness_s`` is then measured to the final clock.
    """

    job: str
    deadline_s: float
    finish_s: float | None
    lateness_s: float

    def to_dict(self) -> dict:
        return {
            "kind": "deadline-miss",
            "job": self.job,
            "deadline_s": self.deadline_s,
            "finish_s": self.finish_s,
            "lateness_s": self.lateness_s,
        }


@dataclass(frozen=True)
class ExecutionResult:
    """Unified outcome of any engine execution.

    The five leading fields are the legacy ``ScheduleExecution`` record
    (same names, same order — old constructors keep working); the rest is
    the event-driven extension: open-system metadata, the per-device
    occupancy timeline, preemption and deadline accounting, and the
    discrete event log.  ``objective``/``backend`` make results
    self-describing, like the evaluator's fingerprints.
    """

    makespan_s: Seconds
    completions: tuple[JobCompletion, ...]
    segments: tuple[PowerSegment, ...]
    cpu_busy_s: Seconds
    gpu_busy_s: Seconds
    arrivals: Mapping[str, float] = field(default_factory=dict)
    starts: Mapping[str, JobStart] = field(default_factory=dict)
    timeline: tuple[DeviceInterval, ...] = ()
    preemptions: tuple[PreemptionRecord, ...] = ()
    violations: tuple[DeadlineMiss, ...] = ()
    deadlines: Mapping[str, float] = field(default_factory=dict)
    events: tuple[SimEvent, ...] = ()
    events_processed: int = 0
    objective: str = "makespan"
    backend: str = "engine.sim"

    # -- legacy ScheduleExecution surface ------------------------------
    @property
    def mean_power_w(self) -> Watts:
        return segments_mean_power_w(self.segments)

    @property
    def energy_j(self) -> Joules:
        return segments_energy_j(self.segments)

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J x s) of the whole execution."""
        return self.energy_j * self.makespan_s

    @property
    def flow_s(self) -> Seconds:
        """Total flow: sum of completion-minus-arrival over finished jobs."""
        return sum(
            c.finish_s - self.arrivals.get(c.job, 0.0)
            for c in self.completions
        )

    def score(self, objective=None) -> float:
        """Scalar score under an objective (lower is better).

        ``objective`` is duck-typed — a ``repro.core.objectives.Objective``
        or its string value — because the engine layer must not import the
        scheduling layer.  ``None`` scores under the result's own
        :attr:`objective`.
        """
        name = getattr(objective, "value", objective)
        if name is None:
            name = self.objective
        if name == "makespan":
            return self.makespan_s
        if name == "energy":
            return self.energy_j
        if name == "edp":
            return self.edp_js
        if name == "flow_time":
            return self.flow_s
        if name == "makespan_energy":
            return self.makespan_s + _MAKESPAN_ENERGY_RHO * self.energy_j
        raise ValueError(f"unknown objective {objective!r}")

    def finish_of(self, job_uid: str) -> Seconds:
        """Completion time of a specific job."""
        for c in self.completions:
            if c.job == job_uid:
                return c.finish_s
        raise KeyError(f"job {job_uid!r} not in execution record")

    def start_of(self, job_uid: str) -> Seconds:
        """Launch time of a specific job."""
        for c in self.completions:
            if c.job == job_uid:
                return c.start_s
        raise KeyError(f"job {job_uid!r} not in execution record")

    # -- legacy ArrivalExecution surface -------------------------------
    @property
    def execution(self) -> "ExecutionResult":
        """Self-reference kept for old ``ArrivalExecution.execution`` users."""
        return self

    def turnaround_s(self, uid: str) -> Seconds:
        return self.finish_of(uid) - self.arrivals[uid]

    @property
    def mean_turnaround_s(self) -> Seconds:
        return sum(self.turnaround_s(uid) for uid in self.arrivals) / len(
            self.arrivals
        )

    @property
    def max_turnaround_s(self) -> Seconds:
        return max(self.turnaround_s(uid) for uid in self.arrivals)

    # -- event-driven extension ----------------------------------------
    @property
    def deadline_misses(self) -> int:
        return len(self.violations)

    @property
    def preempted_jobs(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(p.job for p in self.preemptions))

    def intervals_of(self, job_uid: str) -> tuple[DeviceInterval, ...]:
        """The occupancy chain of one job, in time order."""
        return tuple(iv for iv in self.timeline if iv.job == job_uid)

    def with_objective(self, objective) -> "ExecutionResult":
        """A copy re-labelled with another objective (data unchanged)."""
        name = getattr(objective, "value", objective)
        return replace(self, objective=name)

    def to_dict(self) -> dict:
        """Stable plain-data form for the service wire protocol."""
        return {
            "schema": 1,
            "backend": self.backend,
            "objective": self.objective,
            "makespan_s": self.makespan_s,
            "cpu_busy_s": self.cpu_busy_s,
            "gpu_busy_s": self.gpu_busy_s,
            "energy_j": self.energy_j,
            "mean_power_w": self.mean_power_w,
            "events_processed": self.events_processed,
            "completions": [
                {
                    "job": c.job,
                    "kind": c.kind,
                    "finish_s": c.finish_s,
                    "start_s": c.start_s,
                }
                for c in self.completions
            ],
            "segments_n": len(self.segments),
            "arrivals": dict(self.arrivals),
            "starts": {
                uid: {
                    "kind": str(s.kind),
                    "start_s": s.start_s,
                    "partner": s.partner,
                    "cpu_ghz": s.setting.cpu_ghz,
                    "gpu_ghz": s.setting.gpu_ghz,
                }
                for uid, s in self.starts.items()
            },
            "timeline": [iv.to_dict() for iv in self.timeline],
            "preemptions": [p.to_dict() for p in self.preemptions],
            "violations": [v.to_dict() for v in self.violations],
            "deadlines": dict(self.deadlines),
            "events": [e.to_dict() for e in self.events],
        }


# ----------------------------------------------------------------------
# Internal mutable bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _PreemptRec:
    job: str
    from_device: str
    at_s: float
    resumed_device: str | None = None
    resumed_s: float | None = None
    penalty_s: float = 0.0
    migrated: bool = False

    def freeze(self) -> PreemptionRecord:
        return PreemptionRecord(
            job=self.job,
            from_device=self.from_device,
            at_s=self.at_s,
            resumed_device=self.resumed_device,
            resumed_s=self.resumed_s,
            penalty_s=self.penalty_s,
            migrated=self.migrated,
        )


@dataclass
class _Suspended:
    """Checkpointed progress of a preempted job.

    ``foreign`` marks a checkpoint imported from another node's core (a
    cross-node handoff in a fleet): resuming it pays the migration penalty
    even when the device kind matches, because the state still crossed a
    machine boundary.
    """

    job: Job
    kind: DeviceKind
    phase_idx: int
    phase_frac: float
    rec: _PreemptRec
    foreign: bool = False


class SimCore:
    """Resumable discrete-event executor over virtual time.

    The simulation core under every :func:`run` mode and the live service
    session.  :meth:`add_arrival` injects future (or immediate) jobs,
    :meth:`advance` moves the timeline forward under a policy, consulting
    the governor whenever the running pair changes.  Between advances the
    caller may interleave arrivals, governor swaps, partial advances, and
    — unlike the legacy ``ArrivalSimulator`` — mid-run :meth:`preempt` /
    :meth:`migrate` calls, scheduled cap changes, and deadlines.

    Policies are callables ``(kind, pending, other_job, now) -> Job|None``
    and may additionally provide:

    * ``has_work()`` — overrides "is anything pending?" (job sources that
      mint jobs on demand);
    * ``on_event(sim, event)`` — hook invoked at every discrete event
      (arrival, start/resume, completion, preemption, cap change,
      deadline), where rescheduling decisions can preempt or migrate;
    * ``stuck_message`` — error text when both devices idle with work
      remaining and the policy still declines.
    """

    def __init__(
        self,
        processor: IntegratedProcessor,
        governor: GovernorFn,
        *,
        penalties: PenaltyModel | None = None,
        record_events: bool = False,
    ):
        self.processor = processor
        self.governor = governor
        self.now = 0.0
        self.events_processed = 0
        self._future: list[tuple[float, int, Job]] = []
        self._timed: list[tuple[float, int, EventKind, object]] = []
        self._seq = 0
        self._pending: list[Job] = []
        self._uids: set[str] = set()
        self._arrivals: dict[str, float] = {}
        self._deadlines: dict[str, float] = {}
        self._finish: dict[str, float] = {}
        self._completions: list[JobCompletion] = []
        self._segments: list[PowerSegment] = []
        self._starts: dict[str, JobStart] = {}
        self._cpu_busy = 0.0
        self._gpu_busy = 0.0
        self._cpu_run: PhasedRunner | None = None
        self._gpu_run: PhasedRunner | None = None
        self._cpu_job: Job | None = None
        self._gpu_job: Job | None = None
        self._cpu_pen = self._gpu_pen = 0.0
        self._cpu_warm = self._gpu_warm = 0.0
        self._setting: FrequencySetting | None = None
        self._pair_changed = True
        self._penalties = penalties if penalties is not None else PenaltyModel()
        self._suspended: dict[str, _Suspended] = {}
        self._preempt_log: list[_PreemptRec] = []
        self._open: dict[DeviceKind, tuple[str, float] | None] = {
            DeviceKind.CPU: None,
            DeviceKind.GPU: None,
        }
        self._intervals: list[DeviceInterval] = []
        self._record_events = record_events
        self._events: list[SimEvent] = []
        self._hook = None
        # Memo for the segment physics: stalls, watts and contended phase
        # durations are a pure function of (setting, phase pair), and long
        # traces revisit the same pairs constantly.
        self._phys_cache: dict[object, tuple] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_arrival(
        self, job: Job, at_s: Seconds, *, deadline_s: Seconds | None = None
    ) -> None:
        """Register ``job`` to arrive at virtual time ``at_s`` (>= now)."""
        if at_s < 0:
            raise ValueError(f"{job.uid}: negative arrival time")
        if at_s < self.now - _EPS:
            raise ValueError(
                f"{job.uid}: arrival at {at_s} is in the past (now={self.now})"
            )
        if job.uid in self._uids:
            raise ValueError("job uids must be unique")
        if deadline_s is not None and deadline_s < at_s:
            raise ValueError(f"{job.uid}: deadline precedes arrival")
        self._uids.add(job.uid)
        self._arrivals[job.uid] = at_s
        heapq.heappush(self._future, (at_s, self._seq, job))
        self._seq += 1
        if deadline_s is not None:
            self._deadlines[job.uid] = deadline_s
            self._push_timed(deadline_s, EventKind.DEADLINE, job.uid)

    def schedule_governor_change(self, at_s: Seconds, governor: GovernorFn) -> None:
        """Schedule a governor swap (power-cap change) at virtual time ``at_s``."""
        if at_s < self.now - _EPS:
            raise ValueError(f"cap change at {at_s} is in the past (now={self.now})")
        self._push_timed(at_s, EventKind.CAP_CHANGE, governor)

    def set_governor(self, governor: GovernorFn) -> None:
        """Swap the frequency governor; the running pair is re-evaluated."""
        self.governor = governor
        self.invalidate_setting()

    def invalidate_setting(self) -> None:
        """Force a governor consult at the next step (e.g. cap changed)."""
        self._pair_changed = True

    def withdraw(self, uid: str) -> Job:
        """Remove a not-yet-started job from the pending pool or the future."""
        for i, job in enumerate(self._pending):
            if job.uid == uid:
                del self._pending[i]
                self._forget(uid)
                return job
        for i, (_, _, job) in enumerate(self._future):
            if job.uid == uid:
                del self._future[i]
                heapq.heapify(self._future)
                self._forget(uid)
                return job
        raise KeyError(f"job {uid!r} is not pending (already started or unknown)")

    def _forget(self, uid: str) -> None:
        self._uids.discard(uid)
        del self._arrivals[uid]
        self._deadlines.pop(uid, None)
        self._suspended.pop(uid, None)

    # ------------------------------------------------------------------
    # Preemption and migration
    # ------------------------------------------------------------------
    def preempt(self, kind: DeviceKind) -> Job:
        """Checkpoint the job running on ``kind`` back into the pending pool.

        Progress is preserved as work fractions; when the policy places the
        job again it pays the :class:`PenaltyModel` resume cost on-device
        before making further progress (plus the migration cost if it lands
        on the other processor, plus the warm-up window after that).
        """
        run = self._cpu_run if kind is DeviceKind.CPU else self._gpu_run
        job = self._cpu_job if kind is DeviceKind.CPU else self._gpu_job
        if run is None or job is None:
            raise RuntimeError(f"nothing to preempt on {kind}")
        rec = _PreemptRec(job=job.uid, from_device=str(kind), at_s=self.now)
        self._preempt_log.append(rec)
        self._suspended[job.uid] = _Suspended(
            job=job,
            kind=kind,
            phase_idx=run.phase_idx,
            phase_frac=run.phase_frac,
            rec=rec,
        )
        self._close_interval(kind, self.now)
        if kind is DeviceKind.CPU:
            self._cpu_run, self._cpu_job = None, None
            self._cpu_pen = self._cpu_warm = 0.0
        else:
            self._gpu_run, self._gpu_job = None, None
            self._gpu_pen = self._gpu_warm = 0.0
        self._pending.append(job)
        self._pair_changed = True
        self._emit(EventKind.PREEMPTION, job=job.uid, device=str(kind))
        return job

    def migrate(self, kind: DeviceKind) -> Job:
        """Preempt the job on ``kind`` and resume it on the other processor
        immediately (paying checkpoint/restart plus the migration cost)."""
        target = kind.other
        target_busy = (
            self._cpu_run if target is DeviceKind.CPU else self._gpu_run
        ) is not None
        if target_busy:
            job = self._cpu_job if kind is DeviceKind.CPU else self._gpu_job
            uid = job.uid if job is not None else "<idle>"
            raise RuntimeError(f"cannot migrate {uid!r}: {target} is busy")
        job = self.preempt(kind)
        self._pending.remove(job)
        self._place(job, target, from_pool=False)
        return job

    def export_checkpoint(self, uid: str) -> _Suspended:
        """Detach a preempted job's checkpoint for adoption by another core.

        The job must currently be suspended (preempted and back in the
        pending pool).  After export this core forgets the job entirely;
        hand the returned state to :meth:`adopt_checkpoint` on the
        destination core.  The preemption record travels with the
        checkpoint, so the resume fields are filled in (in the destination
        core's native time) when the job is placed again.
        """
        sus = self._suspended.get(uid)
        if sus is None:
            raise KeyError(f"job {uid!r} has no suspended checkpoint to export")
        self._pending.remove(sus.job)
        del self._suspended[uid]
        self._uids.discard(uid)
        del self._arrivals[uid]
        self._deadlines.pop(uid, None)
        return sus

    def adopt_checkpoint(
        self, state: _Suspended, *, deadline_s: float | None = None
    ) -> None:
        """Admit a checkpoint exported from another core.

        The job lands in this core's pending pool marked *foreign*, so its
        eventual placement pays the :class:`PenaltyModel` migration cost on
        top of the resume cost even if it lands on the same device kind it
        left — the state crossed a machine boundary.
        """
        uid = state.job.uid
        if uid in self._uids:
            raise ValueError(f"job {uid!r} already known to this core")
        self._uids.add(uid)
        self._arrivals[uid] = self.now
        if deadline_s is not None:
            self._deadlines[uid] = deadline_s
        state.foreign = True
        self._suspended[uid] = state
        self._pending.append(state.job)
        self._emit(EventKind.ARRIVAL, job=uid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> tuple[Job, ...]:
        """Arrived but not yet started (or currently preempted) jobs."""
        return tuple(self._pending)

    @property
    def queued(self) -> int:
        """Jobs not yet started (arrived or future)."""
        return len(self._pending) + len(self._future)

    @property
    def running(self) -> dict[DeviceKind, Job]:
        out = {}
        if self._cpu_run is not None:
            out[DeviceKind.CPU] = self._cpu_job
        if self._gpu_run is not None:
            out[DeviceKind.GPU] = self._gpu_job
        return out

    @property
    def idle(self) -> bool:
        """True when nothing is running and nothing can ever start."""
        return (
            self._cpu_run is None
            and self._gpu_run is None
            and not self._pending
            and not self._future
        )

    @property
    def current_setting(self) -> FrequencySetting | None:
        return self._setting

    @property
    def arrivals(self) -> dict[str, float]:
        return dict(self._arrivals)

    @property
    def deadlines(self) -> dict[str, float]:
        return dict(self._deadlines)

    @property
    def starts(self) -> dict[str, JobStart]:
        return dict(self._starts)

    @property
    def preemptions(self) -> tuple[PreemptionRecord, ...]:
        """Frozen view of every preemption so far (resumed or not).

        The service tier reads this incrementally to mirror preempt and
        migrate transitions into its durable event log.
        """
        return tuple(rec.freeze() for rec in self._preempt_log)

    @property
    def completions(self) -> tuple[JobCompletion, ...]:
        return tuple(self._completions)

    @property
    def events(self) -> tuple[SimEvent, ...]:
        return tuple(self._events)

    def record(
        self, *, objective: str = "makespan", backend: str = "engine.sim"
    ) -> ExecutionResult:
        """The execution so far as a standard record."""
        timeline = list(self._intervals)
        for kind, open_iv in self._open.items():
            if open_iv is not None:
                uid, t0 = open_iv
                timeline.append(
                    DeviceInterval(job=uid, device=str(kind), t0_s=t0, t1_s=self.now)
                )
        violations = []
        for uid in sorted(self._deadlines):
            dl = self._deadlines[uid]
            finish = self._finish.get(uid)
            if finish is None:
                if self.now > dl + _DEADLINE_EPS:
                    violations.append(
                        DeadlineMiss(
                            job=uid,
                            deadline_s=dl,
                            finish_s=None,
                            lateness_s=self.now - dl,
                        )
                    )
            elif finish > dl + _DEADLINE_EPS:
                violations.append(
                    DeadlineMiss(
                        job=uid,
                        deadline_s=dl,
                        finish_s=finish,
                        lateness_s=finish - dl,
                    )
                )
        return ExecutionResult(
            makespan_s=self.now,
            completions=tuple(self._completions),
            segments=tuple(self._segments),
            cpu_busy_s=self._cpu_busy,
            gpu_busy_s=self._gpu_busy,
            arrivals=dict(self._arrivals),
            starts=dict(self._starts),
            timeline=tuple(timeline),
            preemptions=tuple(r.freeze() for r in self._preempt_log),
            violations=tuple(violations),
            deadlines=dict(self._deadlines),
            events=tuple(self._events),
            events_processed=self.events_processed,
            objective=objective,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Stepping internals
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: EventKind,
        *,
        job: str | None = None,
        device: str | None = None,
        at_s: float | None = None,
    ) -> None:
        self.events_processed += 1
        if self._record_events or self._hook is not None:
            event = SimEvent(
                at_s=self.now if at_s is None else at_s,
                kind=kind,
                job=job,
                device=device,
            )
            if self._record_events:
                self._events.append(event)
            if self._hook is not None:
                self._hook(self, event)

    def _push_timed(self, at_s: float, kind: EventKind, payload: object) -> None:
        heapq.heappush(self._timed, (at_s, self._seq, kind, payload))
        self._seq += 1

    def _close_interval(self, kind: DeviceKind, t1_s: float) -> None:
        open_iv = self._open[kind]
        if open_iv is not None:
            uid, t0 = open_iv
            self._intervals.append(
                DeviceInterval(job=uid, device=str(kind), t0_s=t0, t1_s=t1_s)
            )
            self._open[kind] = None

    def _admit(self) -> None:
        while self._future and self._future[0][0] <= self.now + _EPS:
            _, _, job = heapq.heappop(self._future)
            self._pending.append(job)
            self._emit(EventKind.ARRIVAL, job=job.uid)

    def _fire_timed(self) -> None:
        while self._timed and self._timed[0][0] <= self.now + _EPS:
            at_s, _, kind, payload = heapq.heappop(self._timed)
            if kind is EventKind.CAP_CHANGE:
                self.governor = payload
                self._pair_changed = True
                self._emit(EventKind.CAP_CHANGE, at_s=at_s)
            elif kind is EventKind.DEADLINE:
                uid = payload
                if uid in self._deadlines and uid not in self._finish:
                    self._emit(EventKind.DEADLINE, job=uid, at_s=at_s)

    def _place(self, job: Job, kind: DeviceKind, *, from_pool: bool) -> None:
        """Put ``job`` on device ``kind`` (fresh start or post-preemption)."""
        if from_pool:
            self._pending.remove(job)
        elif job.uid not in self._uids:
            # Online-source job: first sighting — register its metadata.
            self._uids.add(job.uid)
            self._arrivals.setdefault(job.uid, self.now)
        if kind is DeviceKind.CPU:
            fmax = self.processor.cpu.domain.fmax
        else:
            fmax = self.processor.gpu.domain.fmax
        runner = PhasedRunner(job.profile, self.processor, kind, fmax)
        sus = self._suspended.pop(job.uid, None)
        pen = warm = 0.0
        if sus is not None:
            runner.seek(sus.phase_idx, sus.phase_frac)
            pen = self._penalties.resume_cost_s
            migrated = sus.foreign or kind is not sus.kind
            if migrated:
                pen += self._penalties.migrate_s
            warm = self._penalties.warmup_s
            sus.rec.resumed_device = str(kind)
            sus.rec.resumed_s = self.now
            sus.rec.penalty_s = pen
            sus.rec.migrated = migrated
        if kind is DeviceKind.CPU:
            self._cpu_job, self._cpu_run = job, runner
            self._cpu_pen, self._cpu_warm = pen, warm
        else:
            self._gpu_job, self._gpu_run = job, runner
            self._gpu_pen, self._gpu_warm = pen, warm
        self._open[kind] = (job.uid, self.now)
        self._pair_changed = True
        self._emit(
            EventKind.START if sus is None else EventKind.RESUME,
            job=job.uid,
            device=str(kind),
        )

    def _try_start(self, policy, have) -> list[tuple[Job, DeviceKind]]:
        started: list[tuple[Job, DeviceKind]] = []
        if self._cpu_run is None and (
            have() if have is not None else self._pending
        ):
            job = policy(
                DeviceKind.CPU, list(self._pending), self._gpu_job, self.now
            )
            if job is not None:
                self._place(job, DeviceKind.CPU, from_pool=have is None)
                started.append((job, DeviceKind.CPU))
        if self._gpu_run is None and (
            have() if have is not None else self._pending
        ):
            job = policy(
                DeviceKind.GPU, list(self._pending), self._cpu_job, self.now
            )
            if job is not None:
                self._place(job, DeviceKind.GPU, from_pool=have is None)
                started.append((job, DeviceKind.GPU))
        return started

    def _physics(
        self, cpu_eff: PhasedRunner | None, gpu_eff: PhasedRunner | None
    ) -> tuple[tuple[float, float], float, float | None, float | None]:
        """Stall pair, segment watts and contended durations, memoized.

        All four are pure functions of the current frequency setting and
        the two active phase timings (``PhaseTiming`` is a frozen value
        type), so repeated visits to the same phase pair — the common case
        on long traces — skip the memory-contention and power models
        entirely.  Results are bit-identical to the direct computation.
        """
        key = (
            self._setting,
            None
            if cpu_eff is None
            else (cpu_eff.current_phase(), cpu_eff.sensitivity),
            None
            if gpu_eff is None
            else (gpu_eff.current_phase(), gpu_eff.sensitivity),
        )
        hit = self._phys_cache.get(key)
        if hit is None:
            if len(self._phys_cache) >= 8192:
                self._phys_cache.clear()
            stalls = _pair_stalls(self.processor, cpu_eff, gpu_eff)
            watts = _segment_power(
                self.processor, self._setting, cpu_eff, gpu_eff, stalls
            )
            cpu_dur = (
                cpu_eff.contended_duration(stalls[0])
                if cpu_eff is not None
                else None
            )
            gpu_dur = (
                gpu_eff.contended_duration(stalls[1])
                if gpu_eff is not None
                else None
            )
            hit = (stalls, watts, cpu_dur, gpu_dur)
            self._phys_cache[key] = hit
        return hit

    def _consult_governor(self) -> None:
        self._setting = self.governor(
            self._cpu_job if self._cpu_run else None,
            self._gpu_job if self._gpu_run else None,
        )
        self.processor.validate_setting(self._setting)
        if self._cpu_run is not None:
            self._cpu_run.set_frequency(self._setting.cpu_ghz)
        if self._gpu_run is not None:
            self._gpu_run.set_frequency(self._setting.gpu_ghz)
        self._pair_changed = False

    def advance(
        self, policy: PolicyFn, until_s: float = math.inf
    ) -> list[JobCompletion]:
        """Advance the timeline under ``policy`` to ``until_s`` (or idle).

        Returns the completions that happened during this call.  With a
        finite ``until_s`` the clock lands exactly on the boundary even if
        the system idles earlier, so later arrivals keep a consistent
        virtual "now"; jobs arriving exactly at the boundary are admitted
        and may start, but no further time passes.
        """
        have = getattr(policy, "has_work", None)
        self._hook = getattr(policy, "on_event", None)
        stuck = getattr(policy, "stuck_message", _STUCK_DEFAULT)
        wf = self._penalties.warmup_factor
        new: list[JobCompletion] = []
        try:
            for _ in range(_MAX_EVENTS):
                self._admit()
                self._fire_timed()
                started = self._try_start(policy, have)

                if self._cpu_run is None and self._gpu_run is None:
                    if not self._pending and not self._future:
                        if have is not None and have():
                            raise RuntimeError(stuck)
                        if math.isfinite(until_s) and self.now < until_s:
                            self.now = until_s
                        break
                    if not self._pending:
                        # Idle gap: jump to the next arrival (or boundary).
                        t_next = self._future[0][0]
                        if t_next > until_s:
                            self.now = until_s
                            break
                        self.now = t_next
                        continue
                    raise RuntimeError(stuck)

                if self._pair_changed or self._setting is None:
                    self._consult_governor()
                for job, kind in started:
                    if job.uid in self._starts:
                        continue  # resumed job: keep its first-launch record
                    partner = (
                        self._gpu_job if kind is DeviceKind.CPU else self._cpu_job
                    )
                    self._starts[job.uid] = JobStart(
                        job=job.uid,
                        kind=kind,
                        start_s=self.now,
                        setting=self._setting,
                        partner=partner.uid if partner is not None else None,
                    )

                remaining = until_s - self.now
                if remaining <= _EPS:
                    break

                # A device serving a resume penalty is busy but presents no
                # memory demand and no compute activity — model it as idle
                # for stall and power purposes.
                cpu_eff = self._cpu_run if self._cpu_pen <= 0.0 else None
                gpu_eff = self._gpu_run if self._gpu_pen <= 0.0 else None
                stalls, watts, cpu_dur, gpu_dur = self._physics(
                    cpu_eff, gpu_eff
                )
                dts = []
                if self._cpu_run is not None:
                    if self._cpu_pen > 0.0:
                        dts.append(self._cpu_pen)
                    else:
                        tte = (1.0 - self._cpu_run.phase_frac) * cpu_dur
                        if self._cpu_warm > 0.0:
                            dts.append(min(self._cpu_warm, tte * wf))
                        else:
                            dts.append(tte)
                if self._gpu_run is not None:
                    if self._gpu_pen > 0.0:
                        dts.append(self._gpu_pen)
                    else:
                        tte = (1.0 - self._gpu_run.phase_frac) * gpu_dur
                        if self._gpu_warm > 0.0:
                            dts.append(min(self._gpu_warm, tte * wf))
                        else:
                            dts.append(tte)
                if self._future:
                    dts.append(max(self._future[0][0] - self.now, _EPS))
                if self._timed:
                    dts.append(max(self._timed[0][0] - self.now, _EPS))
                if math.isfinite(remaining):
                    dts.append(remaining)
                dt = min(dts)
                if dt > 0:
                    self._segments.append(PowerSegment(duration_s=dt, watts=watts))
                    if self._cpu_run is not None:
                        self._cpu_busy += dt
                    if self._gpu_run is not None:
                        self._gpu_busy += dt
                # Advance the clock before completion handling so an
                # ``on_event`` hook that preempts at a completion sees the
                # post-step ``now`` (interval bookkeeping stays consistent).
                self.now += dt
                if self._cpu_run is not None:
                    if self._cpu_pen > 0.0:
                        self._cpu_pen -= dt
                        if self._cpu_pen <= _EPS:
                            self._cpu_pen = 0.0
                    else:
                        if self._cpu_warm > 0.0:
                            self._cpu_run.advance_in(dt / wf, cpu_dur)
                            self._cpu_warm -= dt
                            if self._cpu_warm <= _EPS:
                                self._cpu_warm = 0.0
                        else:
                            self._cpu_run.advance_in(dt, cpu_dur)
                        if self._cpu_run.done:
                            uid = self._cpu_job.uid
                            done = JobCompletion(
                                uid, "cpu", self.now,
                                self._starts[uid].start_s,
                            )
                            self._completions.append(done)
                            new.append(done)
                            self._finish[uid] = self.now
                            self._close_interval(DeviceKind.CPU, self.now)
                            self._cpu_run, self._cpu_job = None, None
                            self._pair_changed = True
                            self._emit(
                                EventKind.COMPLETION, job=uid, device="cpu",
                            )
                if self._gpu_run is not None:
                    if self._gpu_pen > 0.0:
                        self._gpu_pen -= dt
                        if self._gpu_pen <= _EPS:
                            self._gpu_pen = 0.0
                    else:
                        if self._gpu_warm > 0.0:
                            self._gpu_run.advance_in(dt / wf, gpu_dur)
                            self._gpu_warm -= dt
                            if self._gpu_warm <= _EPS:
                                self._gpu_warm = 0.0
                        else:
                            self._gpu_run.advance_in(dt, gpu_dur)
                        if self._gpu_run.done:
                            uid = self._gpu_job.uid
                            done = JobCompletion(
                                uid, "gpu", self.now,
                                self._starts[uid].start_s,
                            )
                            self._completions.append(done)
                            new.append(done)
                            self._finish[uid] = self.now
                            self._close_interval(DeviceKind.GPU, self.now)
                            self._gpu_run, self._gpu_job = None, None
                            self._pair_changed = True
                            self._emit(
                                EventKind.COMPLETION, job=uid, device="gpu",
                            )
                self.events_processed += 1
            else:  # pragma: no cover - defensive
                raise RuntimeError("simulation exceeded the event budget")
        finally:
            self._hook = None
        return new


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class FixedSchedulePolicy:
    """Replays a fixed co-schedule: two queues, then the solo tail.

    Each device drains its own queue in order; solo-tail jobs are released
    strictly sequentially, and only once both queues are exhausted *and*
    the other processor has gone idle — reproducing the legacy
    ``execute_schedule`` semantics exactly.
    """

    def __init__(
        self,
        cpu_queue: Sequence[Job],
        gpu_queue: Sequence[Job],
        solo_tail: Sequence[tuple[Job, DeviceKind]] = (),
    ):
        self._cpu = deque(cpu_queue)
        self._gpu = deque(gpu_queue)
        self._solo = deque(solo_tail)

    def __call__(
        self, kind: DeviceKind, available: list[Job], other: Job | None, now: float
    ) -> Job | None:
        queue = self._cpu if kind is DeviceKind.CPU else self._gpu
        if queue:
            return queue.popleft()
        if self._cpu or self._gpu:
            return None  # this queue is done; wait for the other side
        if self._solo and other is None:
            job, solo_kind = self._solo[0]
            if solo_kind is kind:
                self._solo.popleft()
                return job
        return None

    def enqueue(self, job: Job, kind: DeviceKind) -> None:
        """Append a late addition (e.g. a migrated checkpoint) to a queue."""
        (self._cpu if kind is DeviceKind.CPU else self._gpu).append(job)


class SourcePolicy:
    """Adapter presenting an :class:`OnlineJobSource` as a SimCore policy."""

    stuck_message = (
        "online source declined to issue a job with both processors idle"
    )

    def __init__(self, source: OnlineJobSource):
        self.source = source

    def has_work(self) -> bool:
        return self.source.remaining() > 0

    def __call__(
        self, kind: DeviceKind, available: list[Job], other: Job | None, now: float
    ) -> Job | None:
        return self.source.next_job(kind, other, other is not None, now)


def _is_source(policy) -> bool:
    return hasattr(policy, "next_job") and hasattr(policy, "remaining")


# ----------------------------------------------------------------------
# The unified entry point
# ----------------------------------------------------------------------
def run(
    target,
    scenario: Scenario,
    *,
    policy=None,
    governor: GovernorFn | None = None,
    record_events: bool = False,
    sanitize: bool | None = None,
) -> ExecutionResult:
    """Execute a :class:`Scenario` and return an :class:`ExecutionResult`.

    ``target`` is either an
    :class:`~repro.hardware.processor.IntegratedProcessor` (then
    ``governor`` is required) or a ``SchedulingContext`` (its predictor
    supplies the processor; its governor and objective are used unless
    overridden).  ``policy`` applies to arrival scenarios only and may be
    a plain callable or an :class:`OnlineJobSource`.

    With ``sanitize`` unset, the invariant verifier referees the result
    when the target context sanitizes or ``REPRO_SANITIZE=1`` is set.
    """
    ctx = None
    if isinstance(target, IntegratedProcessor):
        processor = target
    else:
        ctx = target
        processor = getattr(getattr(ctx, "predictor", None), "processor", None)
        if processor is None:
            raise TypeError(
                "run() target must be an IntegratedProcessor or a "
                "SchedulingContext whose predictor exposes a processor"
            )
        if governor is None:
            governor = getattr(ctx, "governor", None)
    if governor is None:
        raise TypeError(
            "run() needs a governor: pass governor=... or a context that "
            "carries one"
        )
    objective = "makespan"
    if ctx is not None:
        objective = getattr(getattr(ctx, "objective", None), "value", objective)

    if scenario.cpu_timeshare:
        if policy is not None:
            raise ValueError("timeshare scenarios do not take a policy")
        from repro.engine.multiprog import DEFAULT_CS_OVERHEAD, _timeshare_run

        cs = (
            scenario.cs_overhead
            if scenario.cs_overhead is not None
            else DEFAULT_CS_OVERHEAD
        )
        result = _timeshare_run(
            processor,
            list(scenario.cpu_queue or ()),
            list(scenario.gpu_queue or ()),
            governor,
            cs_overhead=cs,
            objective=objective,
        )
    elif scenario.fixed:
        if policy is not None:
            raise ValueError(
                "fixed scenarios replay their queues; policies apply to "
                "arrival scenarios"
            )
        cpu_q = list(scenario.cpu_queue or ())
        gpu_q = list(scenario.gpu_queue or ())
        solo = list(scenario.solo_tail)
        all_jobs = [j.uid for j in cpu_q] + [j.uid for j in gpu_q] + [
            j.uid for j, _ in solo
        ]
        if len(set(all_jobs)) != len(all_jobs):
            raise ValueError("a job appears more than once in the schedule")
        deadline_by_uid = {
            spec.job.uid: spec.deadline_s
            for spec in scenario.jobs
            if spec.deadline_s is not None
        }
        sim = SimCore(
            processor,
            governor,
            penalties=scenario.penalties,
            record_events=record_events,
        )
        for job in cpu_q + gpu_q + [j for j, _ in solo]:
            sim.add_arrival(job, 0.0, deadline_s=deadline_by_uid.get(job.uid))
        for at_s, gov in scenario.cap_changes:
            sim.schedule_governor_change(at_s, gov)
        sim.advance(FixedSchedulePolicy(cpu_q, gpu_q, solo), scenario.until_s)
        result = sim.record(objective=objective)
    else:
        if policy is None:
            raise ValueError("an arrival scenario needs a policy")
        if _is_source(policy):
            policy = SourcePolicy(policy)
        if not scenario.jobs and getattr(policy, "has_work", None) is None:
            raise ValueError("need at least one arriving job")
        uids = [spec.job.uid for spec in scenario.jobs]
        if len(set(uids)) != len(uids):
            raise ValueError("job uids must be unique")
        sim = SimCore(
            processor,
            governor,
            penalties=scenario.penalties,
            record_events=record_events,
        )
        for spec in scenario.jobs:
            sim.add_arrival(spec.job, spec.arrival_s, deadline_s=spec.deadline_s)
        for at_s, gov in scenario.cap_changes:
            sim.schedule_governor_change(at_s, gov)
        sim.advance(policy, scenario.until_s)
        result = sim.record(objective=objective)

    if sanitize is None:
        if ctx is not None:
            sanitize = bool(getattr(ctx, "sanitizing", False))
        else:
            from repro.analysis.invariants import env_sanitizer_enabled

            sanitize = env_sanitizer_enabled()
    if sanitize:
        from repro.analysis.invariants import check_execution

        check_execution(result, where="engine.run")
    return result
