"""Execution trace records shared by the co-run and timeline simulators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.rapl import PowerTrace, sample_power_trace
from repro.units import Joules, Seconds, Watts


@dataclass(frozen=True)
class PowerSegment:
    """A stretch of execution with constant chip power."""

    duration_s: Seconds
    watts: Watts


@dataclass(frozen=True)
class JobCompletion:
    """When a job ran and where."""

    job: str
    kind: str
    finish_s: Seconds
    start_s: Seconds = 0.0

    @property
    def duration_s(self) -> Seconds:
        return self.finish_s - self.start_s


def segments_energy_j(segments: tuple[PowerSegment, ...]) -> Joules:
    """Total energy of a segment list, in joules."""
    return sum(s.duration_s * s.watts for s in segments)


def segments_mean_power_w(segments: tuple[PowerSegment, ...]) -> Watts:
    """Time-weighted mean power of a segment list."""
    total = sum(s.duration_s for s in segments)
    if total <= 0:
        return 0.0
    return segments_energy_j(segments) / total


def segments_to_trace(
    segments: tuple[PowerSegment, ...],
    *,
    dt_s: Seconds = 1.0,
    jitter_w: Watts = 0.0,
    seed=None,
) -> PowerTrace:
    """Convert power segments into a RAPL-style sampled trace."""
    return sample_power_trace(
        [(s.duration_s, s.watts) for s in segments],
        dt_s=dt_s,
        jitter_w=jitter_w,
        seed=seed,
    )
