"""Ground-truth co-run simulation of one CPU job and one GPU job.

The simulator advances both sides' phase sequences event-by-event.  Within a
segment (between phase boundaries), each side declares its standalone
bandwidth demand for its current phase; the shared memory system converts
the pair of demands into per-side stall factors; each side's phase is
re-timed under its stall (scaled by the program's contention sensitivity)
and progresses linearly until the earlier phase boundary.

This is the reproduction's equivalent of *measuring* a co-run on hardware:
the paper's Section V predictor is evaluated against exactly these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.hardware.processor import IntegratedProcessor
from repro.workload.program import ProgramProfile
from repro.engine.standalone import PhaseTiming, phase_timings, standalone_run
from repro.engine.tracing import PowerSegment, segments_mean_power_w

#: Progress slop when deciding a phase has finished.
_EPS = 1e-12

#: Hard cap on simulation events — a runaway loop indicates a bug, not work.
_MAX_EVENTS = 200_000


class PhasedRunner:
    """Phase-by-phase progress tracker for one program on one device.

    Tracks which phase the program is in and the completed fraction of that
    phase.  Frequencies may change between segments: progress is stored as
    work fractions, so re-deriving the phase timings at a new frequency
    preserves position.
    """

    def __init__(
        self,
        profile: ProgramProfile,
        processor: IntegratedProcessor,
        kind: DeviceKind,
        f_ghz: float,
        *,
        loop: bool = False,
    ) -> None:
        self.profile = profile
        self.processor = processor
        self.kind = kind
        self.loop = loop
        self.phase_idx = 0
        self.phase_frac = 0.0
        self.laps = 0
        self.f_ghz = 0.0
        self.phases: tuple[PhaseTiming, ...] = ()
        self.set_frequency(f_ghz)

    def set_frequency(self, f_ghz: float) -> None:
        """Re-time the phase list at a new frequency (progress preserved)."""
        if f_ghz == self.f_ghz:
            return
        self.f_ghz = f_ghz
        self.phases = phase_timings(
            self.profile, self.processor.device(self.kind), f_ghz
        )
        self._skip_empty_phases()

    def seek(self, phase_idx: int, phase_frac: float) -> None:
        """Jump to a stored progress point (phase index + completed fraction).

        Used to restore a checkpointed job after preemption or migration:
        progress is device-independent work fractions, so a runner built
        for the *other* device kind can resume the same logical position.
        """
        if phase_idx < 0 or phase_frac < 0.0:
            raise ValueError("seek target must be non-negative")
        self.phase_idx = phase_idx
        self.phase_frac = phase_frac
        self._skip_empty_phases()

    def _skip_empty_phases(self) -> None:
        while not self.done and self.phases[self.phase_idx].duration_s <= 0.0:
            self._next_phase()

    def _next_phase(self) -> None:
        self.phase_idx += 1
        self.phase_frac = 0.0
        if self.phase_idx >= len(self.phases) and self.loop:
            self.phase_idx = 0
            self.laps += 1

    @property
    def done(self) -> bool:
        return not self.loop and self.phase_idx >= len(self.phases)

    @property
    def sensitivity(self) -> float:
        return self.profile.sensitivity[self.kind]

    def current_phase(self) -> PhaseTiming:
        if self.done:
            raise RuntimeError(f"{self.profile.name} already finished")
        return self.phases[self.phase_idx]

    def demand_gbps(self) -> float:
        """Declared (standalone) bandwidth demand of the current phase."""
        return 0.0 if self.done else self.current_phase().demand_gbps

    def contended_duration(self, stall: float) -> float:
        """Full duration of the current phase under ``stall``."""
        return self.current_phase().contended_duration(stall, self.sensitivity)

    def time_to_phase_end(self, stall: float) -> float:
        """Wall time until the current phase completes under ``stall``."""
        return (1.0 - self.phase_frac) * self.contended_duration(stall)

    def compute_fraction(self, stall: float) -> float:
        """Compute-busy fraction of the current phase under ``stall``."""
        dur = self.contended_duration(stall)
        if dur <= 0.0:
            return 0.0
        return min(1.0, self.current_phase().compute_s / dur)

    def achieved_bw(self, stall: float) -> float:
        """Bandwidth actually consumed during the current phase."""
        return self.demand_gbps() / stall

    def advance(self, dt: float, stall: float) -> None:
        """Progress by ``dt`` seconds of wall time under ``stall``."""
        if self.done:
            raise RuntimeError(f"{self.profile.name} already finished")
        self.advance_in(dt, self.contended_duration(stall))

    def advance_in(self, dt: float, dur: float) -> None:
        """Progress by ``dt`` given the phase's contended duration ``dur``.

        Callers that already hold ``contended_duration(stall)`` (e.g. the
        event core's memoized physics) skip recomputing it; the arithmetic
        is identical to :meth:`advance`.
        """
        if self.done:
            raise RuntimeError(f"{self.profile.name} already finished")
        self.phase_frac += dt / dur if dur > 0 else 1.0
        if self.phase_frac >= 1.0 - _EPS:
            self._next_phase()
            self._skip_empty_phases()


@dataclass(frozen=True)
class CoRunResult:
    """Outcome of co-running one CPU job and one GPU job from a joint start."""

    cpu_program: str
    gpu_program: str
    setting: FrequencySetting
    cpu_time_s: float
    gpu_time_s: float
    cpu_standalone_s: float
    gpu_standalone_s: float
    segments: tuple[PowerSegment, ...]

    @property
    def makespan_s(self) -> float:
        return max(self.cpu_time_s, self.gpu_time_s)

    @property
    def cpu_degradation(self) -> float:
        """Fractional slowdown of the CPU job versus its solo run."""
        return self.cpu_time_s / self.cpu_standalone_s - 1.0

    @property
    def gpu_degradation(self) -> float:
        return self.gpu_time_s / self.gpu_standalone_s - 1.0

    @property
    def mean_power_w(self) -> float:
        return segments_mean_power_w(self.segments)


def _pair_stalls(
    processor: IntegratedProcessor,
    cpu_runner: PhasedRunner | None,
    gpu_runner: PhasedRunner | None,
) -> tuple[float, float]:
    cpu_demand = cpu_runner.demand_gbps() if cpu_runner and not cpu_runner.done else 0.0
    gpu_demand = gpu_runner.demand_gbps() if gpu_runner and not gpu_runner.done else 0.0
    return processor.memory.pair_stall_factors(cpu_demand, gpu_demand)


def _segment_power(
    processor: IntegratedProcessor,
    setting: FrequencySetting,
    cpu_runner: PhasedRunner | None,
    gpu_runner: PhasedRunner | None,
    stalls: tuple[float, float],
) -> float:
    power = processor.power
    if cpu_runner is not None and not cpu_runner.done:
        util_c = power.cpu.effective_util(cpu_runner.compute_fraction(stalls[0]))
        bw_c = cpu_runner.achieved_bw(stalls[0])
    else:
        util_c, bw_c = power.cpu.idle_util, 0.0
    if gpu_runner is not None and not gpu_runner.done:
        util_g = power.gpu.effective_util(gpu_runner.compute_fraction(stalls[1]))
        bw_g = gpu_runner.achieved_bw(stalls[1])
    else:
        util_g, bw_g = power.gpu.idle_util, 0.0
    return processor.chip_power(setting, util_c, util_g, bw_c + bw_g)


def corun_pair(
    processor: IntegratedProcessor,
    cpu_profile: ProgramProfile,
    gpu_profile: ProgramProfile,
    setting: FrequencySetting,
) -> CoRunResult:
    """Co-run two programs started together; each runs to completion once.

    After the shorter job finishes, the longer one continues alone (no
    contention), exactly like the finite co-runs of the paper's Section III
    example and Figure 9 power traces.
    """
    cpu_runner = PhasedRunner(cpu_profile, processor, DeviceKind.CPU, setting.cpu_ghz)
    gpu_runner = PhasedRunner(gpu_profile, processor, DeviceKind.GPU, setting.gpu_ghz)

    t = 0.0
    cpu_finish = gpu_finish = None
    segments: list[PowerSegment] = []
    for _ in range(_MAX_EVENTS):
        if cpu_runner.done and gpu_runner.done:
            break
        stalls = _pair_stalls(processor, cpu_runner, gpu_runner)
        dts = []
        if not cpu_runner.done:
            dts.append(cpu_runner.time_to_phase_end(stalls[0]))
        if not gpu_runner.done:
            dts.append(gpu_runner.time_to_phase_end(stalls[1]))
        dt = min(dts)
        watts = _segment_power(processor, setting, cpu_runner, gpu_runner, stalls)
        if dt > 0:
            segments.append(PowerSegment(duration_s=dt, watts=watts))
        if not cpu_runner.done:
            cpu_runner.advance(dt, stalls[0])
            if cpu_runner.done and cpu_finish is None:
                cpu_finish = t + dt
        if not gpu_runner.done:
            gpu_runner.advance(dt, stalls[1])
            if gpu_runner.done and gpu_finish is None:
                gpu_finish = t + dt
        t += dt
    else:  # pragma: no cover - defensive
        raise RuntimeError("co-run simulation exceeded the event budget")

    return CoRunResult(
        cpu_program=cpu_profile.name,
        gpu_program=gpu_profile.name,
        setting=setting,
        cpu_time_s=cpu_finish if cpu_finish is not None else 0.0,
        gpu_time_s=gpu_finish if gpu_finish is not None else 0.0,
        cpu_standalone_s=standalone_run(cpu_profile, processor.cpu, setting.cpu_ghz).time_s,
        gpu_standalone_s=standalone_run(gpu_profile, processor.gpu, setting.gpu_ghz).time_s,
        segments=tuple(segments),
    )


def steady_degradation(
    processor: IntegratedProcessor,
    target: ProgramProfile,
    target_kind: DeviceKind,
    partner: ProgramProfile,
    setting: FrequencySetting,
) -> float:
    """Steady-state fractional degradation of ``target`` next to ``partner``.

    The partner loops its phase sequence for the target's entire execution,
    so the result is the paper's ``d_{i,p,f}^{j,g}``: the degradation job i
    experiences when job j continuously occupies the other processor.
    """
    if target_kind is DeviceKind.CPU:
        tgt_f, par_f = setting.cpu_ghz, setting.gpu_ghz
    else:
        tgt_f, par_f = setting.gpu_ghz, setting.cpu_ghz
    tgt = PhasedRunner(target, processor, target_kind, tgt_f)
    par = PhasedRunner(partner, processor, target_kind.other, par_f, loop=True)

    t = 0.0
    for _ in range(_MAX_EVENTS):
        if tgt.done:
            break
        if target_kind is DeviceKind.CPU:
            stalls = _pair_stalls(processor, tgt, par)
            tgt_stall, par_stall = stalls[0], stalls[1]
        else:
            stalls = _pair_stalls(processor, par, tgt)
            tgt_stall, par_stall = stalls[1], stalls[0]
        dt = min(tgt.time_to_phase_end(tgt_stall), par.time_to_phase_end(par_stall))
        tgt.advance(dt, tgt_stall)
        par.advance(dt, par_stall)
        t += dt
    else:  # pragma: no cover - defensive
        raise RuntimeError("steady-state simulation exceeded the event budget")

    alone = standalone_run(
        target, processor.device(target_kind), tgt_f
    ).time_s
    if alone <= 0.0:
        return 0.0
    return t / alone - 1.0
