"""Genetic-algorithm co-scheduling (the paper's reference [23] approach).

Phan et al. evolve co-schedules with a genetic algorithm on homogeneous
clusters; this module adapts the idea to the Definition 2.1 search space so
it can serve as a second search-based comparator (next to A*): a genome is
a placement vector plus a priority permutation, decoded into two processor
queues; fitness is the predicted makespan under the same cap-aware governor
HCS uses.

GA is the anytime middle ground between greedy HCS (instant, good) and A*
(optimal, exponential): a few hundred fitness evaluations typically land
within a few percent of A* on 8-job instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.workload.program import Job
from repro.core.context import SchedulingContext
from repro.core.schedule import CoSchedule
from repro.model.predictor import CoRunPredictor
from repro.perf.evaluator import ScheduleEvaluator


@dataclass(frozen=True)
class GaConfig:
    """Population and operator settings."""

    population: int = 40
    generations: int = 30
    elite: int = 4
    crossover_rate: float = 0.8
    mutation_rate: float = 0.15

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must fit inside the population")
        for name in ("crossover_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")


@dataclass
class _Genome:
    """placement[i] True -> CPU; priority: order within each queue.

    ``decoded`` memoizes the genome's :class:`CoSchedule`: elites survive
    across generations and the scalar loop re-decodes each genome for the
    fitness sort, the tournaments, and the generation-batch evaluation —
    all of which now share one build.  Operators always produce *new*
    genomes (fresh arrays, empty memo), so a cached decode can never go
    stale.
    """

    placement: np.ndarray
    priority: np.ndarray
    decoded: CoSchedule | None = None


class GeneticScheduler:
    """Evolve two-queue co-schedules under the predicted model.

    On a tensor-backed context the whole evolution runs vectorized: the
    population lives as ``(P, n)`` index matrices, operators are batched
    array ops (:mod:`repro.perf.population`), and each generation is
    scored by one ``score_population`` lockstep replay.  ``vectorized``
    forces the choice: ``True`` requires the population kernels (raising
    if the context cannot support them), ``False`` pins the scalar
    per-genome loop (the equivalence referee), ``None`` picks
    automatically.
    """

    def __init__(
        self,
        predictor: CoRunPredictor | SchedulingContext,
        jobs: Sequence[Job] | None = None,
        cap_w: float | None = None,
        *,
        config: GaConfig | None = None,
        seed=None,
        evaluator: ScheduleEvaluator | None = None,
        executor=None,
        vectorized: bool | None = None,
    ) -> None:
        ctx = SchedulingContext.coerce(
            predictor, jobs, cap_w, evaluator=evaluator, executor=executor, seed=seed
        )
        self.jobs = list(ctx.jobs)
        if len({j.uid for j in self.jobs}) != len(self.jobs):
            raise ValueError("job uids must be unique")
        self.predictor = ctx.predictor
        from repro.core.feasibility import context_cap

        self.cap_w = context_cap(ctx)
        self.config = config if config is not None else GaConfig()
        self.rng = ctx.rng()
        # Fitness is the context's objective score — a GA over an energy
        # context genuinely evolves low-energy schedules.
        self.evaluator = ctx.evaluator
        self.governor = ctx.governor
        self.executor = ctx.executor
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def _decode(self, genome: _Genome) -> CoSchedule:
        if genome.decoded is None:
            order = np.argsort(genome.priority, kind="stable")
            cpu = [self.jobs[i] for i in order if genome.placement[i]]
            gpu = [self.jobs[i] for i in order if not genome.placement[i]]
            genome.decoded = CoSchedule(cpu_queue=tuple(cpu), gpu_queue=tuple(gpu))
        return genome.decoded

    def _fitness(self, genome: _Genome) -> float:
        return self.evaluator(self._decode(genome))

    def _evaluate_population(self, population: list[_Genome]) -> None:
        """Fill the evaluator's cache for a whole generation at once.

        Uncached genomes fan out over the executor (the GA's evaluation is
        embarrassingly parallel within a generation); results are identical
        to serial evaluation because fitness is a pure function.
        """
        self.evaluator.evaluate_all(
            [self._decode(g) for g in population], executor=self.executor
        )

    def _random_genome(self) -> _Genome:
        n = len(self.jobs)
        return _Genome(
            placement=self.rng.random(n) < 0.5,
            priority=self.rng.permutation(n).astype(np.int64),
        )

    def _crossover(self, a: _Genome, b: _Genome) -> _Genome:
        n = len(self.jobs)
        mask = self.rng.random(n) < 0.5
        placement = np.where(mask, a.placement, b.placement)
        # Order crossover on the priority permutation: keep a's relative
        # order for masked positions, fill the rest in b's order.
        child = np.empty(n, dtype=np.int64)
        a_rank = np.argsort(a.priority, kind="stable")
        b_rank = np.argsort(b.priority, kind="stable")
        picked = set(int(i) for i in a_rank[: n // 2])
        sequence = [int(i) for i in a_rank[: n // 2]] + [
            int(i) for i in b_rank if int(i) not in picked
        ]
        for rank, idx in enumerate(sequence):
            child[idx] = rank
        return _Genome(placement=placement, priority=child)

    def _mutate(self, genome: _Genome) -> _Genome:
        n = len(self.jobs)
        placement = genome.placement.copy()
        priority = genome.priority.copy()
        if self.rng.random() < self.config.mutation_rate:
            placement[int(self.rng.integers(n))] ^= True
        if n >= 2 and self.rng.random() < self.config.mutation_rate:
            i, j = self.rng.choice(n, size=2, replace=False)
            priority[i], priority[j] = priority[j], priority[i]
        return _Genome(placement=placement, priority=priority)

    # ------------------------------------------------------------------
    def _population_evaluator(self):
        """The context's batch evaluator, when it can score this job set.

        Vectorized evolution needs the tensor backend's pair tables with
        every job covered; anything else (scalar backend, custom governor
        or evaluator, uncovered uids) returns ``None`` and the scalar
        loop runs.
        """
        from repro.perf.tensor import BatchScheduleEvaluator

        ev = self.evaluator
        if not isinstance(ev, BatchScheduleEvaluator) or ev.tables is None:
            return None
        index = ev.tensor.index
        if any(j.uid not in index for j in self.jobs):
            return None
        return ev

    def _evolve_vectorized(
        self, ev, seed_schedule: CoSchedule | None
    ) -> tuple[CoSchedule, float]:
        """Array-matrix evolution: one lockstep replay per generation."""
        from repro.perf import population as popkit

        index = ev.tensor.index
        job_index = np.array(
            [index[j.uid] for j in self.jobs], dtype=np.int64
        )

        def score(placement: np.ndarray, priority: np.ndarray) -> np.ndarray:
            Qc, len_c, Qg, len_g = popkit.decode_queues(
                placement, priority, job_index
            )
            scores, _, _, _, bad = ev.score_population(Qc, len_c, Qg, len_g)
            if bad.any():
                # Surface the exact scalar error: re-evaluate the first
                # infeasible genome through the evaluator, whose scalar
                # fallback raises InfeasibleCapError with the offending
                # pair named — identical to the per-genome path.
                k = int(np.argmax(bad))
                self.evaluator(
                    self._decode(_Genome(placement[k], priority[k]))
                )
            return scores

        seed_place = seed_prio = None
        if seed_schedule is not None:
            seeded = self._encode(seed_schedule)
            seed_place, seed_prio = seeded.placement, seeded.priority
        place, prio, _ = popkit.evolve_population(
            score,
            len(self.jobs),
            self.config,
            self.rng,
            seed_placement=seed_place,
            seed_priority=seed_prio,
        )
        best = self._decode(_Genome(placement=place, priority=prio))
        # Report the memoized evaluator score (bitwise equal to the batch
        # lane's), so the result is cache-consistent with every other path.
        return best, self.evaluator(best)

    def evolve(
        self, *, seed_schedule: CoSchedule | None = None
    ) -> tuple[CoSchedule, float]:
        """Run the GA; returns the best schedule and its predicted makespan.

        ``seed_schedule`` (e.g. HCS's output) is injected into the initial
        population — memetic seeding, which in practice lets the GA act as
        a *refiner* of the heuristic.
        """
        if self.vectorized is not False:
            ev = self._population_evaluator()
            if ev is not None:
                return self._evolve_vectorized(ev, seed_schedule)
            if self.vectorized is True:
                raise ValueError(
                    "vectorized evolution requires a tensor-backed context "
                    "(BatchScheduleEvaluator with pair tables covering "
                    "every job)"
                )
        cfg = self.config
        population = [self._random_genome() for _ in range(cfg.population)]
        if seed_schedule is not None:
            population[0] = self._encode(seed_schedule)

        for _ in range(cfg.generations):
            self._evaluate_population(population)
            population.sort(key=self._fitness)
            next_gen = population[: cfg.elite]
            while len(next_gen) < cfg.population:
                a, b = self._tournament(population), self._tournament(population)
                child = (
                    self._crossover(a, b)
                    if self.rng.random() < cfg.crossover_rate
                    else a
                )
                next_gen.append(self._mutate(child))
            population = next_gen

        self._evaluate_population(population)
        best = min(population, key=self._fitness)
        return self._decode(best), self._fitness(best)

    def _tournament(self, population: list[_Genome], k: int = 3) -> _Genome:
        picks = self.rng.choice(len(population), size=min(k, len(population)),
                                replace=False)
        return min((population[int(i)] for i in picks), key=self._fitness)

    def _encode(self, schedule: CoSchedule) -> _Genome:
        uid_to_idx = {j.uid: i for i, j in enumerate(self.jobs)}
        n = len(self.jobs)
        placement = np.zeros(n, dtype=bool)
        priority = np.zeros(n, dtype=np.int64)
        rank = 0
        for job in schedule.cpu_queue:
            placement[uid_to_idx[job.uid]] = True
            priority[uid_to_idx[job.uid]] = rank
            rank += 1
        for job in schedule.gpu_queue:
            priority[uid_to_idx[job.uid]] = rank
            rank += 1
        for job, _ in schedule.solo_tail:
            priority[uid_to_idx[job.uid]] = rank
            rank += 1
        return _Genome(placement=placement, priority=priority)


def genetic_schedule(
    predictor: CoRunPredictor | SchedulingContext,
    jobs: Sequence[Job] | None = None,
    cap_w: float | None = None,
    *,
    config: GaConfig | None = None,
    seed=None,
    seed_schedule: CoSchedule | None = None,
    evaluator: ScheduleEvaluator | None = None,
    executor=None,
    vectorized: bool | None = None,
) -> tuple[CoSchedule, float]:
    """Convenience wrapper around :class:`GeneticScheduler`."""
    return GeneticScheduler(
        predictor,
        jobs,
        cap_w,
        config=config,
        seed=seed,
        evaluator=evaluator,
        executor=executor,
        vectorized=vectorized,
    ).evolve(seed_schedule=seed_schedule)
