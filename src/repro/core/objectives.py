"""Pluggable scheduling objectives: makespan, energy, energy-delay product.

Definition 2.1 minimizes the makespan, but the power-cap setting naturally
raises the energy question (the related work's co-scheduling-for-energy line
[18, 22]).  This module makes the objective a first-class axis:

* :class:`Objective` — the enum every layer shares, with string coercion
  (``"makespan"`` / ``"energy"`` / ``"edp"``) so wire protocols and CLI
  flags round-trip losslessly;
* objective evaluators over measured executions and predicted metrics
  (lower is always better);
* :class:`EnergyAwareGovernor` — a drop-in replacement for the HCS
  governor that picks, among cap-feasible frequency settings, the one
  minimizing the *predicted objective cost to complete the running pair*
  (energy, or energy x time for EDP) instead of the predicted completion
  time;
* :func:`governor_for` — the default governor factory used by
  :class:`~repro.core.context.SchedulingContext`.

Low frequencies are disproportionately energy-efficient (dynamic power
falls with ``f * V(f)^2`` while run time grows only with ``1/f``), so the
energy-optimal operating point sits well below the cap — the experiment in
``repro.experiments.energy`` quantifies the throughput/energy trade the
governors span.

All cap-feasibility enumeration goes through :mod:`repro.core.feasibility`;
in particular an infeasible pair raises
:class:`~repro.errors.InfeasibleCapError` (not a bare ``RuntimeError``), so
the CLI's exit-code-2 contract holds for energy runs too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.workload.program import Job
from repro.core.feasibility import (
    pair_energy_j,
    pair_settings_under_cap,
    require_pair_settings,
    require_solo_levels,
    solo_energy_j,
)
from repro.model.predictor import CoRunPredictor
from repro.units import Hertz, Joules, Seconds, SecondsPerJoule, Watts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sim import ExecutionResult


#: Weight (seconds per joule) of the energy term in the MAKESPAN_ENERGY
#: bicriteria objective: ``score = makespan_s + RHO * energy_j``.  One is
#: the natural scale on this platform — a 15 W cap makes a joule cost about
#: as much slack as a fifteenth of a second of span — and keeping it a
#: module constant keeps every layer's fingerprints comparable.
MAKESPAN_ENERGY_RHO: SecondsPerJoule = 1.0


class Objective(enum.Enum):
    """What a schedule is scored on (lower is better)."""

    MAKESPAN = "makespan"
    ENERGY = "energy"
    EDP = "edp"
    #: Sum of job completion times (total flow with release dates at zero),
    #: the classic speed-scaling bicriteria baseline.
    FLOW_TIME = "flow_time"
    #: Linear makespan + energy combination (``makespan_s + RHO * energy_j``
    #: with :data:`MAKESPAN_ENERGY_RHO`), the other bicriteria baseline.
    MAKESPAN_ENERGY = "makespan_energy"

    @classmethod
    def coerce(cls, value: "Objective | str") -> "Objective":
        """Accept an :class:`Objective` or its string value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                known = ", ".join(o.value for o in cls)
                raise ValueError(
                    f"unknown objective {value!r}; known: {known}"
                ) from None
        raise TypeError(
            f"objective must be an Objective or str, got {type(value).__name__}"
        )

    def score(
        self,
        makespan_s: Seconds,
        energy_j: Joules,
        flow_s: Seconds | None = None,
    ) -> float:
        """Combine the base metrics into this objective's scalar."""
        if self is Objective.MAKESPAN:
            return makespan_s
        if self is Objective.ENERGY:
            return energy_j
        if self is Objective.EDP:
            return energy_j * makespan_s
        if self is Objective.MAKESPAN_ENERGY:
            return makespan_s + MAKESPAN_ENERGY_RHO * energy_j
        if flow_s is None:
            raise ValueError(
                "the flow_time objective needs per-job completion times; "
                "this metric source does not track them"
            )
        return flow_s


def score_execution(
    execution: "ExecutionResult", objective: Objective | str
) -> float:
    """Score a measured execution under an objective (lower is better)."""
    objective = Objective.coerce(objective)
    flow = None
    if objective is Objective.FLOW_TIME:
        arrivals = getattr(execution, "arrivals", {})
        flow = sum(
            c.finish_s - arrivals.get(c.job, 0.0)
            for c in execution.completions
        )
    return objective.score(execution.makespan_s, execution.energy_j, flow)


@dataclass
class EnergyAwareGovernor:
    """Cap-feasible frequency choice minimizing a predicted objective cost.

    For a co-running pair the cost is the predicted energy to complete the
    pair (chip power times summed co-run times — both jobs must finish, and
    power is roughly constant while they overlap), optionally multiplied by
    the pair's predicted span for the EDP objective.  Solo jobs minimize
    the analogous standalone quantity.  Infeasible combinations raise
    :class:`~repro.errors.InfeasibleCapError`.
    """

    predictor: CoRunPredictor
    cap_w: Watts
    objective: Objective = Objective.ENERGY
    _cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.objective = Objective.coerce(self.objective)
        if self.objective in (Objective.MAKESPAN, Objective.FLOW_TIME):
            raise ValueError(
                "EnergyAwareGovernor optimizes energy-weighted objectives; "
                "use ModelGovernor for makespan/flow_time"
            )

    def __call__(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        key = (
            cpu_job.uid if cpu_job else None,
            gpu_job.uid if gpu_job else None,
        )
        if key in self._cache:
            return self._cache[key]
        setting = self._choose(cpu_job, gpu_job)
        self._cache[key] = setting
        return setting

    def _pair_energy(self, cpu_uid: str, gpu_uid: str, s: FrequencySetting) -> Joules:
        return pair_energy_j(self.predictor, cpu_uid, gpu_uid, s)

    def _pair_cost(self, cpu_uid: str, gpu_uid: str, s: FrequencySetting) -> float:
        energy = self._pair_energy(cpu_uid, gpu_uid, s)
        if self.objective is Objective.ENERGY:
            return energy
        t_c, t_g = self.predictor.corun_times(cpu_uid, gpu_uid, s)
        if self.objective is Objective.MAKESPAN_ENERGY:
            return max(t_c, t_g) + MAKESPAN_ENERGY_RHO * energy
        return energy * max(t_c, t_g)

    def _solo_cost(self, uid: str, kind: DeviceKind, f_ghz: Hertz) -> float:
        energy = solo_energy_j(self.predictor, uid, kind, f_ghz)
        if self.objective is Objective.ENERGY:
            return energy
        t = self.predictor.solo_time(uid, kind, f_ghz)
        if self.objective is Objective.MAKESPAN_ENERGY:
            return t + MAKESPAN_ENERGY_RHO * energy
        return energy * t

    def _choose(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        proc = self.predictor.processor
        if cpu_job is not None and gpu_job is not None:
            feasible = require_pair_settings(
                self.predictor, cpu_job.uid, gpu_job.uid, self.cap_w
            )
            return min(
                feasible,
                key=lambda s: self._pair_cost(cpu_job.uid, gpu_job.uid, s),
            )
        if cpu_job is not None:
            levels = require_solo_levels(
                self.predictor, cpu_job.uid, DeviceKind.CPU, self.cap_w
            )
            best = min(
                levels,
                key=lambda f: self._solo_cost(cpu_job.uid, DeviceKind.CPU, f),
            )
            return FrequencySetting(best, proc.gpu.domain.fmin)
        if gpu_job is not None:
            levels = require_solo_levels(
                self.predictor, gpu_job.uid, DeviceKind.GPU, self.cap_w
            )
            best = min(
                levels,
                key=lambda f: self._solo_cost(gpu_job.uid, DeviceKind.GPU, f),
            )
            return FrequencySetting(proc.cpu.domain.fmin, best)
        raise ValueError("governor consulted with no running job")

    def min_pair_interference(
        self, cpu_uid: str, gpu_uid: str
    ) -> tuple[float, FrequencySetting] | None:
        """Minimal predicted objective cost over cap-feasible settings.

        The greedy pairing rule ranks candidate co-runners by this quantity
        (see :meth:`ModelGovernor.min_pair_interference
        <repro.core.freqpolicy.ModelGovernor.min_pair_interference>`); here
        the ranking currency is the objective cost rather than the summed
        degradations, so an energy context pairs jobs that are cheap to run
        *together*.  Returns ``None`` when no setting fits the cap.
        """
        feasible = pair_settings_under_cap(
            self.predictor, cpu_uid, gpu_uid, self.cap_w
        )
        if not feasible:
            return None
        best_s = min(
            feasible, key=lambda s: self._pair_cost(cpu_uid, gpu_uid, s)
        )
        return self._pair_cost(cpu_uid, gpu_uid, best_s), best_s


def governor_for(
    predictor, cap_w: Watts, objective: Objective | str = Objective.MAKESPAN
):
    """The default governor for an objective.

    Makespan and flow time keep the paper's
    :class:`~repro.core.freqpolicy.ModelGovernor` (best predicted
    performance under the cap — the flow-optimal frequency choice is the
    fastest feasible one, like makespan); energy, EDP, and makespan+energy
    swap in the :class:`EnergyAwareGovernor` parameterized by the
    objective.
    """
    objective = Objective.coerce(objective)
    if objective in (Objective.MAKESPAN, Objective.FLOW_TIME):
        from repro.core.freqpolicy import ModelGovernor

        return ModelGovernor(predictor, cap_w)
    return EnergyAwareGovernor(predictor, cap_w, objective)
