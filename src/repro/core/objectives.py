"""Alternative scheduling objectives: energy and energy-delay product.

Definition 2.1 minimizes the makespan, but the power-cap setting naturally
raises the energy question (the related work's co-scheduling-for-energy line
[18, 22]).  This module adds:

* objective evaluators over measured executions (makespan, energy, EDP);
* :class:`EnergyAwareGovernor` — a drop-in replacement for the HCS
  governor that picks, among cap-feasible frequency settings, the one
  minimizing the *predicted energy to complete the running pair* instead of
  the predicted completion time.

Low frequencies are disproportionately energy-efficient (dynamic power
falls with ``f * V(f)^2`` while run time grows only with ``1/f``), so the
energy-optimal operating point sits well below the cap — the experiment in
``repro.experiments.energy`` quantifies the throughput/energy trade the
two governors span.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.workload.program import Job
from repro.engine.timeline import ScheduleExecution
from repro.model.predictor import CoRunPredictor


class Objective(enum.Enum):
    """What a schedule is scored on."""

    MAKESPAN = "makespan"
    ENERGY = "energy"
    EDP = "edp"


def score_execution(execution: ScheduleExecution, objective: Objective) -> float:
    """Score a measured execution under an objective (lower is better)."""
    if objective is Objective.MAKESPAN:
        return execution.makespan_s
    if objective is Objective.ENERGY:
        return execution.energy_j
    return execution.energy_j * execution.makespan_s


@dataclass
class EnergyAwareGovernor:
    """Cap-feasible frequency choice minimizing predicted pair energy.

    The predicted energy to complete a co-running pair is approximated as
    the predicted chip power times the summed predicted co-run times (both
    jobs must finish; power is roughly constant while they overlap).  Solo
    jobs minimize ``chip power x standalone time``.
    """

    predictor: CoRunPredictor
    cap_w: float
    _cache: dict = field(default_factory=dict)

    def __call__(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        key = (
            cpu_job.uid if cpu_job else None,
            gpu_job.uid if gpu_job else None,
        )
        if key in self._cache:
            return self._cache[key]
        setting = self._choose(cpu_job, gpu_job)
        self._cache[key] = setting
        return setting

    def _pair_energy(self, cpu_uid: str, gpu_uid: str, s: FrequencySetting) -> float:
        power = self.predictor.pair_power_w(cpu_uid, gpu_uid, s)
        t_c, t_g = self.predictor.corun_times(cpu_uid, gpu_uid, s)
        return power * (t_c + t_g)

    def _choose(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        proc = self.predictor.processor
        if cpu_job is not None and gpu_job is not None:
            feasible = self.predictor.feasible_pair_settings(
                cpu_job.uid, gpu_job.uid, self.cap_w
            )
            if not feasible:
                raise RuntimeError(
                    f"pair ({cpu_job.uid}, {gpu_job.uid}) infeasible under "
                    f"{self.cap_w} W"
                )
            return min(
                feasible,
                key=lambda s: self._pair_energy(cpu_job.uid, gpu_job.uid, s),
            )
        if cpu_job is not None:
            levels = self.predictor.feasible_solo_levels(
                cpu_job.uid, DeviceKind.CPU, self.cap_w
            )
            best = min(
                levels,
                key=lambda f: self.predictor.solo_power_w(
                    cpu_job.uid, DeviceKind.CPU, f
                )
                * self.predictor.solo_time(cpu_job.uid, DeviceKind.CPU, f),
            )
            return FrequencySetting(best, proc.gpu.domain.fmin)
        if gpu_job is not None:
            levels = self.predictor.feasible_solo_levels(
                gpu_job.uid, DeviceKind.GPU, self.cap_w
            )
            best = min(
                levels,
                key=lambda f: self.predictor.solo_power_w(
                    gpu_job.uid, DeviceKind.GPU, f
                )
                * self.predictor.solo_time(gpu_job.uid, DeviceKind.GPU, f),
            )
            return FrequencySetting(proc.cpu.domain.fmin, best)
        raise ValueError("governor consulted with no running job")
