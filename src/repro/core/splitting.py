"""Kernel-level job splitting analysis (the paper's deferred direction).

Section II limits scheduling to whole jobs, citing Zhang et al. [31]: due to
data-partitioning and communication overhead, splitting one kernel across
CPU and GPU "often yields even worse performance than using a single
processor".  This module implements the split model so that claim can be
*checked* on the simulator rather than assumed:

a split ratio ``alpha`` sends that fraction of a job's work to the CPU and
the rest to the GPU; the two halves co-run (contending for memory like any
pair), plus a synchronization/communication overhead proportional to the
moved data.  :func:`best_split` scans the ratio grid and compares the best
split against the better single-processor placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.hardware.processor import IntegratedProcessor
from repro.workload.program import ProgramProfile
from repro.engine.corun import corun_pair
from repro.engine.standalone import standalone_run
from repro.util.validation import check_in_range, check_nonnegative

#: Default synchronization/communication overhead: seconds added per GB of
#: input handed to the minority device (partition + result merge traffic).
DEFAULT_SYNC_S_PER_GB = 0.35


@dataclass(frozen=True)
class SplitOutcome:
    """Result of evaluating one program's best split."""

    program: str
    best_alpha: float          # CPU share of the work (0 = GPU only)
    split_makespan_s: float    # best split's finish time incl. sync cost
    single_makespan_s: float   # better single-processor standalone time
    single_kind: DeviceKind

    @property
    def split_wins(self) -> bool:
        return self.split_makespan_s < self.single_makespan_s

    @property
    def gain(self) -> float:
        """Relative improvement of the split over the single placement
        (negative when splitting loses)."""
        return 1.0 - self.split_makespan_s / self.single_makespan_s


def split_makespan(
    processor: IntegratedProcessor,
    profile: ProgramProfile,
    alpha: float,
    setting: FrequencySetting,
    *,
    sync_s_per_gb: float = DEFAULT_SYNC_S_PER_GB,
) -> float:
    """Finish time of running ``alpha`` of the job on the CPU, the rest on
    the GPU, with both halves co-running and a data-partitioning penalty."""
    check_in_range("alpha", alpha, 0.0, 1.0)
    check_nonnegative("sync_s_per_gb", sync_s_per_gb)
    if alpha == 0.0:
        return standalone_run(profile, processor.gpu, setting.gpu_ghz).time_s
    if alpha == 1.0:
        return standalone_run(profile, processor.cpu, setting.cpu_ghz).time_s
    cpu_part = profile.scaled(alpha, name=f"{profile.name}~cpu")
    gpu_part = profile.scaled(1.0 - alpha, name=f"{profile.name}~gpu")
    result = corun_pair(processor, cpu_part, gpu_part, setting)
    moved_gb = profile.bytes_gb * min(alpha, 1.0 - alpha)
    return result.makespan_s + sync_s_per_gb * moved_gb


def best_split(
    processor: IntegratedProcessor,
    profile: ProgramProfile,
    *,
    setting: FrequencySetting | None = None,
    alphas=None,
    sync_s_per_gb: float = DEFAULT_SYNC_S_PER_GB,
) -> SplitOutcome:
    """Scan split ratios and compare against the best single placement."""
    if setting is None:
        setting = processor.max_setting
    if alphas is None:
        alphas = np.linspace(0.0, 1.0, 11)

    cpu_solo = standalone_run(profile, processor.cpu, setting.cpu_ghz).time_s
    gpu_solo = standalone_run(profile, processor.gpu, setting.gpu_ghz).time_s
    single_kind = DeviceKind.CPU if cpu_solo <= gpu_solo else DeviceKind.GPU
    single = min(cpu_solo, gpu_solo)

    best_alpha, best_time = 0.0, float("inf")
    for alpha in alphas:
        t = split_makespan(
            processor, profile, float(alpha), setting,
            sync_s_per_gb=sync_s_per_gb,
        )
        if t < best_time:
            best_alpha, best_time = float(alpha), t
    return SplitOutcome(
        program=profile.name,
        best_alpha=best_alpha,
        split_makespan_s=best_time,
        single_makespan_s=single,
        single_kind=single_kind,
    )
