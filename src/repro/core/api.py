"""One front door for every scheduler: ``schedule(jobs, method=...)``.

The package grew six scheduler entry points with six different calling
conventions (``hcs_schedule``, ``random_schedule``, ``default_partition``,
``brute_force_best``, ``astar_schedule``, ``genetic_schedule``).  They all
answer the same question — *given these jobs, this power cap, and this
objective, what co-schedule should run?* — so this module registers each
behind a uniform signature::

    from repro import schedule

    result = schedule(jobs, method="hcs+", cap_w=15.0, seed=0)
    result.schedule              # the CoSchedule
    result.predicted_makespan_s  # its makespan under the shared model
    result.details               # method-specific extras (HcsResult, ...)

    energy = schedule(jobs, method="hcs+", cap_w=15.0, objective="energy")
    energy.predicted_score       # predicted energy (J) — what was minimized

All methods share one :class:`~repro.core.context.SchedulingContext` — one
predictor, one objective-aware governor, one :mod:`repro.perf` evaluation
cache — so cross-method comparisons are apples-to-apples and repeated calls
on the same instance reuse work.  When ``predictor`` is omitted, the
workload is profiled and the degradation space characterized on the spot
(optionally fanned out over ``executor`` and persisted via ``disk_cache``).

The historical per-method functions remain public and unchanged; this is a
facade, not a replacement.  New schedulers plug in with
:func:`register_scheduler`; adapters receive the context plus the caller's
method-specific options.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Callable, Mapping, Sequence

from repro.workload.program import Job
from repro.core.baselines import default_partition, random_schedule
from repro.core.bruteforce import brute_force_best
from repro.core.context import SchedulingContext
from repro.core.objectives import Objective, governor_for
from repro.core.schedule import CoSchedule
from repro.model.characterize import characterize_space
from repro.model.profiler import ProfileTable, extend_table
from repro.model.predictor import CoRunPredictor
from repro.perf.cache import EvalCache
from repro.perf.evaluator import CachingPredictor, ScheduleEvaluator
from repro.perf.executor import make_executor


@dataclass(frozen=True)
class ScheduleResult:
    """Uniform scheduler output: the schedule plus its model-predicted scores.

    ``predicted_makespan_s`` is always the predicted makespan;
    ``predicted_score`` is the predicted value of the objective the method
    optimized (identical to the makespan for the default objective).
    ``details`` carries whatever the underlying method natively returns
    (e.g. the full :class:`~repro.core.hcs.HcsResult`, A*'s node count, the
    GA's fitness) without widening the common surface.  ``governor`` is the
    cap-aware frequency policy the scores were computed under — hand it to
    the execution engine to measure the schedule consistently.
    """

    method: str
    schedule: CoSchedule
    predicted_makespan_s: float
    details: Mapping[str, object] = field(
        default_factory=lambda: MappingProxyType({})
    )
    cache_stats: dict[str, float] | None = None
    objective: Objective = Objective.MAKESPAN
    predicted_score: float | None = None
    governor: object | None = None

    def __post_init__(self) -> None:
        if self.predicted_score is None:
            object.__setattr__(
                self, "predicted_score", self.predicted_makespan_s
            )


_REGISTRY: dict[str, Callable[..., ScheduleResult]] = {}


def register_scheduler(name: str):
    """Register an adapter under ``name`` (decorator).

    The adapter receives a :class:`~repro.core.context.SchedulingContext`
    plus the caller's extra keyword options and must return a
    :class:`ScheduleResult`.
    """

    def decorate(fn: Callable[..., ScheduleResult]):
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"scheduler {name!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    return decorate


def scheduler_names() -> tuple[str, ...]:
    """The registered method names, sorted."""
    return tuple(sorted(_REGISTRY))


def _maybe_sanitize(ctx: SchedulingContext, result: ScheduleResult) -> None:
    """Verify the result's invariants when the sanitizer is armed.

    Raises :class:`~repro.errors.ScheduleInvariantError` (with the
    structured violation list) if the schedule breaks any Definition 2.1
    invariant.  Active under ``REPRO_SANITIZE=1`` or for contexts derived
    via :meth:`~repro.core.context.SchedulingContext.with_sanitizer`.
    """
    if ctx.sanitizing:
        from repro.analysis.invariants import check_schedule

        check_schedule(ctx, result.schedule, where=f"registry:{result.method}")


def _finalize(result: ScheduleResult, ctx: SchedulingContext) -> ScheduleResult:
    """Fill result fields only the caller-side context knows."""
    if result.cache_stats is None or result.governor is None:
        result = ScheduleResult(
            method=result.method,
            schedule=result.schedule,
            predicted_makespan_s=result.predicted_makespan_s,
            details=result.details,
            cache_stats=(
                result.cache_stats
                if result.cache_stats is not None
                else ctx.cache.snapshot()
            ),
            objective=result.objective,
            predicted_score=result.predicted_score,
            governor=result.governor if result.governor is not None else ctx.governor,
        )
    _maybe_sanitize(ctx, result)
    return result


def schedule(
    jobs: Sequence[Job],
    method: str = "hcs",
    *,
    cap_w: float | None = None,
    fleet=None,
    objective: Objective | str = Objective.MAKESPAN,
    predictor: CoRunPredictor | CachingPredictor | None = None,
    processor=None,
    executor=None,
    cache: EvalCache | None = None,
    disk_cache=None,
    seed=None,
    governor=None,
    backend: str = "tensor",
    **opts,
) -> ScheduleResult:
    """Compute a co-schedule for ``jobs`` under ``cap_w`` with ``method``.

    Parameters common to every method:

    ``objective``
        What the method optimizes: ``"makespan"`` (default, Definition
        2.1), ``"energy"``, or ``"edp"`` — an
        :class:`~repro.core.objectives.Objective` or its string value.
        Every registered method honors it: the context's governor picks
        objective-optimal frequencies and the evaluator scores candidates
        on the objective.
    ``predictor``
        A fitted :class:`~repro.model.predictor.CoRunPredictor` (or a
        caching wrapper).  Omit it to profile + characterize on the fly.
    ``processor``
        Hardware model used when building a predictor (default: the
        calibrated Ivy Bridge).  Ignored when ``predictor`` is given.
    ``executor``
        ``None``/``"serial"``/``"threads"``/``"processes"`` (or an
        executor instance) for the parallelizable stages.
    ``cache`` / ``disk_cache``
        Shared :class:`~repro.perf.cache.EvalCache` and optional on-disk
        cache for the model-building stage.
    ``seed``
        Forwarded to stochastic methods (random, genetic, hcs+ refinement).
    ``governor``
        Override the cap-enforcing frequency policy (default: the
        objective's governor from
        :func:`~repro.core.objectives.governor_for`).  Under
        ``REPRO_SANITIZE=1`` the result is still verified against the cap,
        so a governor that ignores it is caught, not trusted.
    ``backend``
        Evaluation backend: ``"tensor"`` (default — precomputed NumPy
        tensors with batched/delta replay, see :mod:`repro.perf.tensor`)
        or ``"scalar"`` (the per-query reference path).  Both produce
        byte-identical schedules and scores; models the tensors cannot
        represent exactly fall back to scalar automatically.

    Remaining keyword options are method-specific and forwarded verbatim
    (e.g. ``threshold=`` for hcs, ``node_budget=`` for astar,
    ``config=`` for genetic).  Unknown methods raise ``ValueError`` listing
    the registry; unknown options raise ``TypeError`` from the adapter.
    """
    if not jobs:
        raise ValueError("cannot schedule an empty job set")
    key = method.lower()
    try:
        adapter = _REGISTRY[key]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise ValueError(f"unknown scheduler {method!r}; known: {known}") from None

    if fleet is not None and len(getattr(fleet, "nodes", ())) > 1:
        # A multi-node fleet: delegate to the placement driver, which runs
        # this same registry method per node.  Returns a
        # :class:`~repro.core.fleetsched.FleetScheduleResult`.
        from repro.core.fleetsched import fleet_schedule

        ctx = SchedulingContext.build(
            jobs,
            fleet=fleet,
            objective=objective,
            predictor=predictor,
            processor=processor,
            executor=executor,
            cache=cache,
            disk_cache=disk_cache,
            seed=seed,
            governor=governor,
            backend=backend,
        )
        return fleet_schedule(ctx, method=key, **opts)

    ctx = SchedulingContext.build(
        jobs,
        cap_w=cap_w,
        fleet=fleet,
        objective=objective,
        predictor=predictor,
        processor=processor,
        executor=executor,
        cache=cache,
        disk_cache=disk_cache,
        seed=seed,
        governor=governor,
        backend=backend,
    )
    return _finalize(adapter(ctx, **opts), ctx)


class Scheduler:
    """A reusable scheduling front end for repeated (online) calls.

    :func:`schedule` resolves its predictor, governor, evaluator, and cache
    afresh on every call, which is the right trade for one-shot batch use.
    A long-running service consults a scheduler every time a processor goes
    idle, over an ever-changing pending set; this wrapper resolves those
    pieces once and reuses them across calls, and :meth:`set_cap` /
    :meth:`set_predictor` rebuild only the cap-dependent pieces while the
    shared :class:`~repro.perf.cache.EvalCache` stays warm.  Omit
    ``predictor`` to let the scheduler manage its own model: the space is
    characterized once and jobs are profiled incrementally the first time
    a call mentions them.

    Score memoization is segregated per cap value (the evaluator's keys
    carry the objective but no cap), so flipping between caps never serves
    stale scores and returning to a previous cap finds its cache warm.
    """

    def __init__(
        self,
        method: str = "hcs",
        *,
        cap_w: float,
        objective: Objective | str = Objective.MAKESPAN,
        predictor: CoRunPredictor | CachingPredictor | None = None,
        processor=None,
        cache: EvalCache | None = None,
        executor=None,
        seed=None,
        disk_cache=None,
        backend: str = "tensor",
        node=None,
        **opts,
    ) -> None:
        key = method.lower()
        #: Optional fleet :class:`~repro.core.fleet.Node` this scheduler
        #: plans for: its speed/power scaling is applied to every context
        #: (``cap_w`` stays authoritative — the node's own cap is ignored).
        self.node = node
        try:
            self._adapter = _REGISTRY[key]
        except KeyError:
            known = ", ".join(scheduler_names())
            raise ValueError(
                f"unknown scheduler {method!r}; known: {known}"
            ) from None
        self.method = key
        self.objective = Objective.coerce(objective)
        if backend not in ("tensor", "scalar"):
            raise ValueError(
                f"unknown backend {backend!r}; known: tensor, scalar"
            )
        self.backend = backend
        self.cache = cache if cache is not None else EvalCache()
        self.executor = make_executor(executor)
        self.seed = seed
        self.opts = opts
        self.cap_w = cap_w
        self._eval_caches: dict[float, EvalCache] = {}
        if predictor is not None:
            self._table = None
            if not isinstance(predictor, CachingPredictor):
                predictor = CachingPredictor(predictor, cache=self.cache)
            self.predictor = predictor
        else:
            # Self-managed model: characterize once, profile jobs lazily as
            # they first appear in a call (content-cached, so repeats of a
            # known program cost one lookup).
            if processor is None:
                from repro.hardware.calibration import make_ivy_bridge

                processor = make_ivy_bridge()
            self._processor = processor
            self._space = characterize_space(
                processor,
                executor=self.executor,
                cache=self.cache,
                disk_cache=disk_cache,
            )
            self._table = ProfileTable(
                processor=processor, jobs=(), _profiles={}
            )
            self.predictor = CachingPredictor(
                CoRunPredictor(processor, self._table, self._space),
                cache=self.cache,
            )
        self._rebuild()

    def _scoped_predictor(self):
        """The predictor as the node sees it (scaled), or the raw one."""
        if self.node is None:
            return self.predictor
        from repro.core.fleet import node_predictor

        return node_predictor(self.predictor, self._capped_node())

    def _capped_node(self):
        from dataclasses import replace

        return replace(self.node, cap_w=self.cap_w)

    def _rebuild(self) -> None:
        scoped = self._scoped_predictor()
        self.governor = governor_for(scoped, self.cap_w, self.objective)
        eval_cache = self._eval_caches.setdefault(self.cap_w, EvalCache())
        self.evaluator = ScheduleEvaluator(
            scoped,
            self.governor,
            cache=eval_cache,
            objective=self.objective,
        )
        # Remember the stock policy pieces: the tensor fast path applies
        # only while they are untouched, so a caller that swaps or mutates
        # the governor/evaluator is always honored (via the scalar path).
        self._stock_governor = self.governor
        self._stock_evaluator = self.evaluator

    def set_cap(self, cap_w: float) -> None:
        """Change the power cap; governor and evaluator are rebuilt."""
        if cap_w != self.cap_w:
            self.cap_w = cap_w
            self._rebuild()

    def set_predictor(
        self, predictor: CoRunPredictor | CachingPredictor
    ) -> None:
        """Swap the predictor (e.g. after its profile table grew)."""
        if not isinstance(predictor, CachingPredictor):
            predictor = CachingPredictor(predictor, cache=self.cache)
        self.predictor = predictor
        self._table = None  # the caller's predictor owns the table now
        # A caller-swapped governor must survive the rebuild — table growth
        # is invisible to the policy, unlike a cap change.
        swapped = (
            self.governor if self.governor is not self._stock_governor else None
        )
        # Uids are never re-bound to different profiles, so per-cap score
        # memos stay valid across table growth; only the bindings refresh.
        self._rebuild()
        if swapped is not None:
            self.governor = swapped
            self.evaluator.governor = swapped

    def _ensure_profiled(self, jobs: Sequence[Job]) -> None:
        if self._table is None:  # caller-supplied predictor owns the table
            return
        missing = [job for job in jobs if job.uid not in self._table]
        if missing:
            self._table = extend_table(
                self._table, missing, executor=self.executor, cache=self.cache
            )
            self.predictor = CachingPredictor(
                CoRunPredictor(self._processor, self._table, self._space),
                cache=self.cache,
            )
            self._rebuild()

    def context(self, jobs: Sequence[Job]) -> SchedulingContext:
        """The frozen context one call would run under (jobs pre-profiled)."""
        self._ensure_profiled(jobs)
        untouched = (
            self.governor is self._stock_governor
            and self.evaluator is self._stock_evaluator
            and self.evaluator.governor is self.governor
        )
        fleet = None
        cap_w = self.cap_w
        if self.node is not None:
            from repro.core.fleet import Fleet

            # The context applies the node's scaling itself (and resolves
            # the alias cap from the node), so pass the fleet, not cap_w.
            fleet = Fleet(nodes=(self._capped_node(),))
            cap_w = None
        if self.backend == "tensor" and untouched:
            # Leave governor/evaluator unset so the context runs the tensor
            # pipeline over the per-cap cache; ``self.governor`` /
            # ``self.evaluator`` stay the scalar reference pieces for
            # callers that consult the policy directly (e.g. the engine).
            return SchedulingContext(
                jobs=tuple(jobs),
                cap_w=cap_w,
                fleet=fleet,
                predictor=self.predictor,
                objective=self.objective,
                executor=self.executor,
                cache=self.evaluator.cache,
                seed=self.seed,
                backend="tensor",
            )
        return SchedulingContext(
            jobs=tuple(jobs),
            cap_w=cap_w,
            fleet=fleet,
            predictor=self.predictor,
            objective=self.objective,
            governor=self.governor,
            evaluator=self.evaluator,
            executor=self.executor,
            cache=self.evaluator.cache,
            seed=self.seed,
            backend="scalar",
        )

    def __call__(self, jobs: Sequence[Job], **opts) -> ScheduleResult:
        """Compute a co-schedule for ``jobs`` under the current cap."""
        if not jobs:
            raise ValueError("cannot schedule an empty job set")
        ctx = self.context(jobs)
        result = self._adapter(ctx, **{**self.opts, **opts})
        if result.cache_stats is None:
            # Report the model-wide shared cache (profiling + predictor
            # queries), not the per-cap evaluator cache.
            result = ScheduleResult(
                method=result.method,
                schedule=result.schedule,
                predicted_makespan_s=result.predicted_makespan_s,
                details=result.details,
                cache_stats=self.cache.snapshot(),
                objective=result.objective,
                predicted_score=result.predicted_score,
                governor=ctx.governor,
            )
        _maybe_sanitize(ctx, result)
        return result


def make_scheduler(method: str = "hcs", **kwargs) -> Scheduler:
    """Build a reusable :class:`Scheduler` (see its docstring)."""
    return Scheduler(method, **kwargs)


def _result(
    ctx: SchedulingContext,
    method: str,
    sched: CoSchedule,
    score: float | None = None,
    **details,
) -> ScheduleResult:
    """Assemble a :class:`ScheduleResult` from an adapter's raw output.

    ``score`` is the predicted *objective* score when the adapter already
    computed it (it equals the makespan under the default objective);
    ``None`` asks the context's evaluator, which memoizes.
    """
    if score is None:
        score = ctx.evaluator(sched)
    makespan = (
        score
        if ctx.objective is Objective.MAKESPAN
        else ctx.predicted_makespan(sched)
    )
    return ScheduleResult(
        method=method,
        schedule=sched,
        predicted_makespan_s=makespan,
        details=MappingProxyType(details),
        objective=ctx.objective,
        predicted_score=score,
        governor=ctx.governor,
    )


# ----------------------------------------------------------------------
# Built-in adapters
# ----------------------------------------------------------------------
@register_scheduler("hcs")
def _hcs_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    from repro.core.hcs import hcs_schedule

    res = hcs_schedule(ctx, refine=False, **opts)
    score = (
        res.predicted_makespan_s
        if ctx.objective is Objective.MAKESPAN
        else None
    )
    return _result(ctx, "hcs", res.schedule, score, hcs=res)


@register_scheduler("hcs+")
def _hcs_plus_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    from repro.core.hcs import hcs_schedule

    res = hcs_schedule(ctx, refine=True, **opts)
    score = (
        res.predicted_makespan_s
        if ctx.objective is Objective.MAKESPAN
        else None
    )
    return _result(ctx, "hcs+", res.schedule, score, hcs=res)


@register_scheduler("random")
def _random_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    sched = random_schedule(ctx, **opts)
    return _result(ctx, "random", sched)


@register_scheduler("default")
def _default_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    part = default_partition(ctx, **opts)
    sched = CoSchedule(
        cpu_queue=part.cpu_partition, gpu_queue=part.gpu_partition
    )
    return _result(ctx, "default", sched, partition=part)


@register_scheduler("brute")
def _brute_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    sched, score = brute_force_best(
        ctx.jobs, ctx.evaluator, executor=ctx.executor, **opts
    )
    return _result(ctx, "brute", sched, score)


@register_scheduler("astar")
def _astar_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    from repro.core.astar import astar_schedule

    sched, elapsed, expanded = astar_schedule(ctx, **opts)
    # A*'s g-cost is elapsed predicted time; under a non-makespan objective
    # the reported score is re-derived from the evaluator instead.
    score = elapsed if ctx.objective is Objective.MAKESPAN else None
    return _result(ctx, "astar", sched, score, nodes_expanded=expanded)


@register_scheduler("genetic")
def _genetic_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    from repro.core.genetic import genetic_schedule

    sched, score = genetic_schedule(ctx, **opts)
    return _result(ctx, "genetic", sched, score)


@register_scheduler("portfolio")
def _portfolio_adapter(ctx: SchedulingContext, **opts) -> ScheduleResult:
    from repro.core.portfolio import portfolio_schedule

    best, stats = portfolio_schedule(ctx, **opts)
    return ScheduleResult(
        method="portfolio",
        schedule=best.schedule,
        predicted_makespan_s=best.predicted_makespan_s,
        details=MappingProxyType({"winner": best.method, "members": stats}),
        objective=ctx.objective,
        predicted_score=best.predicted_score,
        governor=ctx.governor,
    )
