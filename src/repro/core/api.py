"""One front door for every scheduler: ``schedule(jobs, method=...)``.

The package grew six scheduler entry points with six different calling
conventions (``hcs_schedule``, ``random_schedule``, ``default_partition``,
``brute_force_best``, ``astar_schedule``, ``genetic_schedule``).  They all
answer the same question — *given these jobs and this power cap, what
co-schedule should run?* — so this module registers each behind a uniform
signature::

    from repro import schedule

    result = schedule(jobs, method="hcs+", cap_w=15.0, seed=0)
    result.schedule              # the CoSchedule
    result.predicted_makespan_s  # its score under the shared model
    result.details               # method-specific extras (HcsResult, ...)

All methods share one predictor, one cap-aware governor, and one
:mod:`repro.perf` evaluation cache, so cross-method comparisons are
apples-to-apples and repeated calls on the same instance reuse work.  When
``predictor`` is omitted, the workload is profiled and the degradation
space characterized on the spot (optionally fanned out over ``executor``
and persisted via ``disk_cache``).

The historical per-method functions remain public and unchanged; this is a
facade, not a replacement.  New schedulers plug in with
:func:`register_scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Callable, Mapping, Sequence

from repro.workload.program import Job
from repro.core.baselines import default_partition, random_schedule
from repro.core.bruteforce import brute_force_best
from repro.core.freqpolicy import ModelGovernor
from repro.core.schedule import CoSchedule
from repro.model.characterize import characterize_space
from repro.model.profiler import ProfileTable, extend_table, profile_workload
from repro.model.predictor import CoRunPredictor
from repro.perf.cache import EvalCache
from repro.perf.evaluator import CachingPredictor, ScheduleEvaluator
from repro.perf.executor import Executor, make_executor


@dataclass(frozen=True)
class ScheduleResult:
    """Uniform scheduler output: the schedule plus its model-predicted score.

    ``details`` carries whatever the underlying method natively returns
    (e.g. the full :class:`~repro.core.hcs.HcsResult`, A*'s node count, the
    GA's fitness) without widening the common surface.
    """

    method: str
    schedule: CoSchedule
    predicted_makespan_s: float
    details: Mapping[str, object] = field(
        default_factory=lambda: MappingProxyType({})
    )
    cache_stats: dict[str, float] | None = None


@dataclass(frozen=True)
class _Context:
    """Everything an adapter needs, resolved once per ``schedule()`` call."""

    jobs: tuple[Job, ...]
    cap_w: float
    predictor: CoRunPredictor | CachingPredictor
    evaluator: ScheduleEvaluator
    executor: Executor
    seed: object

    @property
    def governor(self) -> ModelGovernor:
        return self.evaluator.governor


_REGISTRY: dict[str, Callable[..., ScheduleResult]] = {}


def register_scheduler(name: str):
    """Register an adapter under ``name`` (decorator).

    The adapter receives a :class:`_Context` plus the caller's extra
    keyword options and must return a :class:`ScheduleResult`.
    """

    def decorate(fn: Callable[..., ScheduleResult]):
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"scheduler {name!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    return decorate


def scheduler_names() -> tuple[str, ...]:
    """The registered method names, sorted."""
    return tuple(sorted(_REGISTRY))


def schedule(
    jobs: Sequence[Job],
    method: str = "hcs",
    *,
    cap_w: float,
    predictor: CoRunPredictor | CachingPredictor | None = None,
    processor=None,
    executor=None,
    cache: EvalCache | None = None,
    disk_cache=None,
    seed=None,
    **opts,
) -> ScheduleResult:
    """Compute a co-schedule for ``jobs`` under ``cap_w`` with ``method``.

    Parameters common to every method:

    ``predictor``
        A fitted :class:`~repro.model.predictor.CoRunPredictor` (or a
        caching wrapper).  Omit it to profile + characterize on the fly.
    ``processor``
        Hardware model used when building a predictor (default: the
        calibrated Ivy Bridge).  Ignored when ``predictor`` is given.
    ``executor``
        ``None``/``"serial"``/``"threads"``/``"processes"`` (or an
        executor instance) for the parallelizable stages.
    ``cache`` / ``disk_cache``
        Shared :class:`~repro.perf.cache.EvalCache` and optional on-disk
        cache for the model-building stage.
    ``seed``
        Forwarded to stochastic methods (random, genetic, hcs+ refinement).

    Remaining keyword options are method-specific and forwarded verbatim
    (e.g. ``threshold=`` for hcs, ``node_budget=`` for astar,
    ``config=`` for genetic).  Unknown methods raise ``ValueError`` listing
    the registry; unknown options raise ``TypeError`` from the adapter.
    """
    if not jobs:
        raise ValueError("cannot schedule an empty job set")
    key = method.lower()
    try:
        adapter = _REGISTRY[key]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise ValueError(f"unknown scheduler {method!r}; known: {known}") from None

    pool = make_executor(executor)
    shared_cache = cache if cache is not None else EvalCache()
    if predictor is None:
        if processor is None:
            from repro.hardware.calibration import make_ivy_bridge

            processor = make_ivy_bridge()
        table = profile_workload(
            processor, jobs, executor=pool, disk_cache=disk_cache
        )
        space = characterize_space(
            processor, executor=pool, disk_cache=disk_cache
        )
        predictor = CachingPredictor(
            CoRunPredictor(processor, table, space), cache=shared_cache
        )
    elif cache is not None and not isinstance(predictor, CachingPredictor):
        predictor = CachingPredictor(predictor, cache=shared_cache)

    governor = ModelGovernor(predictor, cap_w)
    evaluator = ScheduleEvaluator(predictor, governor, cache=shared_cache)
    ctx = _Context(
        jobs=tuple(jobs),
        cap_w=cap_w,
        predictor=predictor,
        evaluator=evaluator,
        executor=pool,
        seed=seed,
    )
    result = adapter(ctx, **opts)
    if result.cache_stats is None:
        result = ScheduleResult(
            method=result.method,
            schedule=result.schedule,
            predicted_makespan_s=result.predicted_makespan_s,
            details=result.details,
            cache_stats=shared_cache.snapshot(),
        )
    return result


class Scheduler:
    """A reusable scheduling front end for repeated (online) calls.

    :func:`schedule` resolves its predictor, governor, evaluator, and cache
    afresh on every call, which is the right trade for one-shot batch use.
    A long-running service consults a scheduler every time a processor goes
    idle, over an ever-changing pending set; this wrapper resolves those
    pieces once and reuses them across calls, and :meth:`set_cap` /
    :meth:`set_predictor` rebuild only the cap-dependent pieces while the
    shared :class:`~repro.perf.cache.EvalCache` stays warm.  Omit
    ``predictor`` to let the scheduler manage its own model: the space is
    characterized once and jobs are profiled incrementally the first time
    a call mentions them.

    Makespan memoization is segregated per cap value (the evaluator's keys
    carry no cap), so flipping between caps never serves stale scores and
    returning to a previous cap finds its cache warm.
    """

    def __init__(
        self,
        method: str = "hcs",
        *,
        cap_w: float,
        predictor: CoRunPredictor | CachingPredictor | None = None,
        processor=None,
        cache: EvalCache | None = None,
        executor=None,
        seed=None,
        disk_cache=None,
        **opts,
    ) -> None:
        key = method.lower()
        try:
            self._adapter = _REGISTRY[key]
        except KeyError:
            known = ", ".join(scheduler_names())
            raise ValueError(
                f"unknown scheduler {method!r}; known: {known}"
            ) from None
        self.method = key
        self.cache = cache if cache is not None else EvalCache()
        self.executor = make_executor(executor)
        self.seed = seed
        self.opts = opts
        self.cap_w = cap_w
        self._eval_caches: dict[float, EvalCache] = {}
        if predictor is not None:
            self._table = None
            if not isinstance(predictor, CachingPredictor):
                predictor = CachingPredictor(predictor, cache=self.cache)
            self.predictor = predictor
        else:
            # Self-managed model: characterize once, profile jobs lazily as
            # they first appear in a call (content-cached, so repeats of a
            # known program cost one lookup).
            if processor is None:
                from repro.hardware.calibration import make_ivy_bridge

                processor = make_ivy_bridge()
            self._processor = processor
            self._space = characterize_space(
                processor,
                executor=self.executor,
                cache=self.cache,
                disk_cache=disk_cache,
            )
            self._table = ProfileTable(
                processor=processor, jobs=(), _profiles={}
            )
            self.predictor = CachingPredictor(
                CoRunPredictor(processor, self._table, self._space),
                cache=self.cache,
            )
        self._rebuild()

    def _rebuild(self) -> None:
        self.governor = ModelGovernor(self.predictor, self.cap_w)
        eval_cache = self._eval_caches.setdefault(self.cap_w, EvalCache())
        self.evaluator = ScheduleEvaluator(
            self.predictor, self.governor, cache=eval_cache
        )

    def set_cap(self, cap_w: float) -> None:
        """Change the power cap; governor and evaluator are rebuilt."""
        if cap_w != self.cap_w:
            self.cap_w = cap_w
            self._rebuild()

    def set_predictor(
        self, predictor: CoRunPredictor | CachingPredictor
    ) -> None:
        """Swap the predictor (e.g. after its profile table grew)."""
        if not isinstance(predictor, CachingPredictor):
            predictor = CachingPredictor(predictor, cache=self.cache)
        self.predictor = predictor
        self._table = None  # the caller's predictor owns the table now
        # Uids are never re-bound to different profiles, so per-cap makespan
        # memos stay valid across table growth; only the bindings refresh.
        self._rebuild()

    def _ensure_profiled(self, jobs: Sequence[Job]) -> None:
        if self._table is None:  # caller-supplied predictor owns the table
            return
        missing = [job for job in jobs if job.uid not in self._table]
        if missing:
            self._table = extend_table(
                self._table, missing, executor=self.executor, cache=self.cache
            )
            self.predictor = CachingPredictor(
                CoRunPredictor(self._processor, self._table, self._space),
                cache=self.cache,
            )
            self._rebuild()

    def __call__(self, jobs: Sequence[Job], **opts) -> ScheduleResult:
        """Compute a co-schedule for ``jobs`` under the current cap."""
        if not jobs:
            raise ValueError("cannot schedule an empty job set")
        self._ensure_profiled(jobs)
        ctx = _Context(
            jobs=tuple(jobs),
            cap_w=self.cap_w,
            predictor=self.predictor,
            evaluator=self.evaluator,
            executor=self.executor,
            seed=self.seed,
        )
        result = self._adapter(ctx, **{**self.opts, **opts})
        if result.cache_stats is None:
            result = ScheduleResult(
                method=result.method,
                schedule=result.schedule,
                predicted_makespan_s=result.predicted_makespan_s,
                details=result.details,
                cache_stats=self.cache.snapshot(),
            )
        return result


def make_scheduler(method: str = "hcs", **kwargs) -> Scheduler:
    """Build a reusable :class:`Scheduler` (see its docstring)."""
    return Scheduler(method, **kwargs)


def _result(
    ctx: _Context,
    method: str,
    sched: CoSchedule,
    score: float | None = None,
    **details,
) -> ScheduleResult:
    if score is None:
        score = ctx.evaluator(sched)
    return ScheduleResult(
        method=method,
        schedule=sched,
        predicted_makespan_s=score,
        details=MappingProxyType(details),
    )


# ----------------------------------------------------------------------
# Built-in adapters
# ----------------------------------------------------------------------
@register_scheduler("hcs")
def _hcs_adapter(ctx: _Context, **opts) -> ScheduleResult:
    from repro.core.hcs import hcs_schedule

    res = hcs_schedule(
        ctx.predictor,
        ctx.jobs,
        ctx.cap_w,
        refine=False,
        seed=ctx.seed,
        evaluator=ctx.evaluator,
        **opts,
    )
    return _result(
        ctx, "hcs", res.schedule, res.predicted_makespan_s, hcs=res
    )


@register_scheduler("hcs+")
def _hcs_plus_adapter(ctx: _Context, **opts) -> ScheduleResult:
    from repro.core.hcs import hcs_schedule

    res = hcs_schedule(
        ctx.predictor,
        ctx.jobs,
        ctx.cap_w,
        refine=True,
        seed=ctx.seed,
        evaluator=ctx.evaluator,
        **opts,
    )
    return _result(
        ctx, "hcs+", res.schedule, res.predicted_makespan_s, hcs=res
    )


@register_scheduler("random")
def _random_adapter(ctx: _Context, **opts) -> ScheduleResult:
    sched = random_schedule(ctx.jobs, seed=ctx.seed, **opts)
    return _result(ctx, "random", sched)


@register_scheduler("default")
def _default_adapter(ctx: _Context, **opts) -> ScheduleResult:
    part = default_partition(ctx.predictor.table, ctx.jobs, **opts)
    sched = CoSchedule(
        cpu_queue=part.cpu_partition, gpu_queue=part.gpu_partition
    )
    return _result(ctx, "default", sched, partition=part)


@register_scheduler("brute")
def _brute_adapter(ctx: _Context, **opts) -> ScheduleResult:
    sched, score = brute_force_best(
        ctx.jobs, ctx.evaluator, executor=ctx.executor, **opts
    )
    return _result(ctx, "brute", sched, score)


@register_scheduler("astar")
def _astar_adapter(ctx: _Context, **opts) -> ScheduleResult:
    from repro.core.astar import astar_schedule

    sched, score, expanded = astar_schedule(
        ctx.predictor, ctx.jobs, ctx.cap_w, **opts
    )
    return _result(ctx, "astar", sched, score, nodes_expanded=expanded)


@register_scheduler("genetic")
def _genetic_adapter(ctx: _Context, **opts) -> ScheduleResult:
    from repro.core.genetic import genetic_schedule

    sched, score = genetic_schedule(
        ctx.predictor,
        ctx.jobs,
        ctx.cap_w,
        seed=ctx.seed,
        evaluator=ctx.evaluator,
        executor=ctx.executor,
        **opts,
    )
    return _result(ctx, "genetic", sched, score)
