"""Heterogeneous fleet model: nodes, budgets, and the node-scaled predictor.

The paper's runtime manages exactly one Ivy Bridge APU under one scalar
power cap.  This module generalizes that world to the fleet setting of the
power/energy-constrained scheduling literature: a :class:`Fleet` is a tuple
of :class:`Node`\\ s, each a *scaled copy* of the calibrated APU — its own
speed scaling (times divide by ``speed_scale``) and power rating (powers
multiply by ``power_scale``) — under either per-node caps or a shared
fleet-wide budget split proportionally to power rating.

Two invariants anchor the design:

* ``Fleet.single(cap_w)`` reproduces today's one-APU world **byte for
  byte**: a trivial single-node fleet never wraps the predictor, never
  rescales a float, and takes exactly the pre-fleet code path through
  every scheduler and backend (the equivalence suite pins this under
  ``REPRO_SANITIZE=1``).
* All scaling happens in the *model* layer.  The calibrated
  :class:`~repro.hardware.processor.IntegratedProcessor` stays untouched;
  :class:`NodePredictor` mirrors the
  :class:`~repro.model.predictor.CoRunPredictor` algorithms on scaled
  values, comparing ``power * scale <= cap`` directly (never delegating
  ``cap / scale`` inward, which would move float boundary cases).

Cap arithmetic for a fleet lives here and in
:mod:`repro.core.feasibility` — everything else goes through
``SchedulingContext.fleet`` / :func:`repro.core.feasibility.context_cap`
(lint rule REP009 referees that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.units import Hertz, PowerScale, Seconds, SpeedScale, Watts


@dataclass(frozen=True)
class Node:
    """One machine in a fleet: a scaled copy of the calibrated APU.

    ``speed_scale`` multiplies throughput (all predicted times divide by
    it); ``power_scale`` multiplies every predicted power draw.  ``cap_w``
    is this node's own power cap, or ``None`` to draw a share of the
    fleet's shared budget (see :meth:`Fleet.node_caps`).
    """

    name: str
    speed_scale: SpeedScale = 1.0
    power_scale: PowerScale = 1.0
    cap_w: Watts | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a node needs a non-empty name")
        if self.speed_scale <= 0:
            raise ValueError(f"{self.name}: speed_scale must be positive")
        if self.power_scale <= 0:
            raise ValueError(f"{self.name}: power_scale must be positive")
        if self.cap_w is not None and self.cap_w <= 0:
            raise ValueError(f"{self.name}: cap_w must be positive")

    @property
    def trivial(self) -> bool:
        """Does this node leave the calibrated APU's numbers untouched?"""
        # repro: noqa REP003 -- exact identity gate: only a literal 1.0 scale skips wrapping
        return self.speed_scale == 1.0 and self.power_scale == 1.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "speed_scale": self.speed_scale,
            "power_scale": self.power_scale,
            "cap_w": self.cap_w,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Node":
        return cls(
            name=d["name"],
            speed_scale=float(d.get("speed_scale", 1.0)),
            power_scale=float(d.get("power_scale", 1.0)),
            cap_w=None if d.get("cap_w") is None else float(d["cap_w"]),
        )


@dataclass(frozen=True)
class Fleet:
    """An ordered tuple of nodes under per-node caps or a shared budget.

    Every node must end up with a resolvable cap: either its own
    ``cap_w`` or a share of ``budget_w``.  With a shared budget, nodes
    that carry an explicit cap keep it; the remaining budget is split
    among the capless nodes proportionally to ``power_scale`` (a bigger
    machine earns a bigger slice).
    """

    nodes: tuple[Node, ...]
    budget_w: Watts | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError("a fleet needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"node names must be unique, got {names}")
        if self.budget_w is not None and self.budget_w <= 0:
            raise ValueError("budget_w must be positive")
        capless = [n for n in self.nodes if n.cap_w is None]
        if self.budget_w is None:
            if capless:
                raise ValueError(
                    "nodes without an explicit cap_w need a fleet budget_w: "
                    + ", ".join(n.name for n in capless)
                )
        else:
            explicit = sum(n.cap_w for n in self.nodes if n.cap_w is not None)
            if capless and self.budget_w - explicit <= 0:
                raise ValueError(
                    f"explicit node caps ({explicit} W) exhaust the "
                    f"{self.budget_w} W fleet budget with capless nodes left"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, cap_w: Watts, name: str = "node0") -> "Fleet":
        """The one-APU world: a single trivial node with its own cap.

        Contexts built over this fleet take the exact pre-fleet code path
        — no predictor wrapping, no rescaling — so schedules and metrics
        are byte-identical to the scalar ``cap_w`` era.
        """
        return cls(nodes=(Node(name=name, cap_w=cap_w),))

    @classmethod
    def parse(cls, spec: str, budget_w: Watts | None = None) -> "Fleet":
        """Build a fleet from a compact CLI spec.

        ``spec`` is a comma-separated list of node descriptors, each
        ``name[:speed[:power[:cap]]]`` — e.g.
        ``big:2.0:1.3,small:0.6:0.5,edge:1.0:1.0:8``.  Omitted fields
        default to 1.0 scaling and a shared-budget cap.  A bare integer
        spec (``"4"``) expands to that many uniform trivial nodes.
        """
        spec = spec.strip()
        if spec.isdigit():
            return cls.uniform(int(spec), budget_w=budget_w)
        nodes = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            bits = part.split(":")
            if len(bits) > 4:
                raise ValueError(
                    f"bad node spec {part!r}: want name[:speed[:power[:cap]]]"
                )
            nodes.append(Node(
                name=bits[0],
                speed_scale=float(bits[1]) if len(bits) > 1 else 1.0,
                power_scale=float(bits[2]) if len(bits) > 2 else 1.0,
                cap_w=float(bits[3]) if len(bits) > 3 else None,
            ))
        return cls(nodes=tuple(nodes), budget_w=budget_w)

    @classmethod
    def uniform(
        cls,
        n: int,
        *,
        node_cap_w: Watts | None = None,
        budget_w: Watts | None = None,
        prefix: str = "node",
    ) -> "Fleet":
        """``n`` identical trivial nodes, per-node capped or shared-budget."""
        if n < 1:
            raise ValueError("a fleet needs at least one node")
        nodes = tuple(
            Node(name=f"{prefix}{i}", cap_w=node_cap_w) for i in range(n)
        )
        return cls(nodes=nodes, budget_w=budget_w)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    @property
    def is_single(self) -> bool:
        return len(self.nodes) == 1

    @property
    def is_trivial_single(self) -> bool:
        """One node, unscaled, explicitly capped — the pre-fleet world."""
        return (
            self.is_single
            and self.nodes[0].trivial
            and self.nodes[0].cap_w is not None
        )

    def node(self, name: str) -> Node:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"no node named {name!r} in the fleet")

    def index(self, name: str) -> int:
        for i, n in enumerate(self.nodes):
            if n.name == name:
                return i
        raise KeyError(f"no node named {name!r} in the fleet")

    def node_caps(self) -> tuple[Watts, ...]:
        """Effective per-node caps, resolving shared-budget shares.

        Explicit caps are kept verbatim; capless nodes split the budget
        remaining after the explicit ones, proportionally to their power
        rating.
        """
        if self.budget_w is None:
            return tuple(n.cap_w for n in self.nodes)
        capless = [n for n in self.nodes if n.cap_w is None]
        if not capless:
            return tuple(n.cap_w for n in self.nodes)
        explicit = sum(n.cap_w for n in self.nodes if n.cap_w is not None)
        remaining = self.budget_w - explicit
        total_scale = sum(n.power_scale for n in capless)
        return tuple(
            n.cap_w
            if n.cap_w is not None
            else remaining * (n.power_scale / total_scale)
            for n in self.nodes
        )

    def cap_of(self, name: str) -> Watts:
        return self.node_caps()[self.index(name)]

    def total_cap_w(self) -> Watts:
        """The fleet-wide power ceiling (shared budget, or summed caps)."""
        if self.budget_w is not None:
            return self.budget_w
        return sum(self.node_caps())

    def describe(self) -> str:
        caps = self.node_caps()
        lines = []
        for n, cap in zip(self.nodes, caps):
            tag = "" if n.cap_w is not None else " (budget share)"
            lines.append(
                f"{n.name}: speed x{n.speed_scale:g}, power x{n.power_scale:g}, "
                f"cap {cap:g} W{tag}"
            )
        if self.budget_w is not None:
            lines.append(f"shared budget: {self.budget_w:g} W")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "nodes": [n.to_dict() for n in self.nodes],
            "budget_w": self.budget_w,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Fleet":
        return cls(
            nodes=tuple(Node.from_dict(nd) for nd in d["nodes"]),
            budget_w=(
                None if d.get("budget_w") is None else float(d["budget_w"])
            ),
        )


class NodePredictor:
    """A predictor view of the calibrated model through one node's scaling.

    Mirrors the :class:`~repro.model.predictor.CoRunPredictor` protocol —
    degradations, co-run times, powers, cap feasibility, ``best_solo`` —
    with times divided by the node's ``speed_scale`` and powers multiplied
    by its ``power_scale``.  Degradations are contention ratios and do not
    scale.

    Two deliberate non-features:

    * no ``cache`` attribute — a :class:`~repro.perf.evaluator.EvalCache`
      keys on (uids, setting) without node identity, so sharing one across
      differently-scaled views would serve wrong answers.  Per-node
      contexts each get a fresh cache.
    * feasibility compares ``scaled_power <= cap_w`` directly instead of
      delegating ``cap_w / power_scale`` to the wrapped predictor; the
      division would move IEEE boundary cases and break bitwise agreement
      with the scaled tensor path.
    """

    def __init__(self, inner, node: Node) -> None:
        self.inner = inner
        self.node = node

    # -- delegated identity -------------------------------------------------
    @property
    def processor(self):
        return self.inner.processor

    @property
    def table(self):
        return self.inner.table

    @property
    def space(self):
        return self.inner.space

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodePredictor({self.node.name!r}, {self.inner!r})"

    # -- performance --------------------------------------------------------
    def degradations(self, cpu_uid, gpu_uid, setting):
        return self.inner.degradations(cpu_uid, gpu_uid, setting)

    def degradation(self, uid, kind, partner_uid, setting):
        if kind is DeviceKind.CPU:
            return self.degradations(uid, partner_uid, setting)[0]
        return self.degradations(partner_uid, uid, setting)[1]

    def corun_times(self, cpu_uid, gpu_uid, setting) -> tuple[Seconds, Seconds]:
        t_c, t_g = self.inner.corun_times(cpu_uid, gpu_uid, setting)
        s = self.node.speed_scale
        return t_c / s, t_g / s

    def solo_time(self, uid, kind, f_ghz: Hertz) -> Seconds:
        return self.inner.solo_time(uid, kind, f_ghz) / self.node.speed_scale

    # -- power --------------------------------------------------------------
    def pair_power_w(self, cpu_uid, gpu_uid, setting) -> Watts:
        return (
            self.inner.pair_power_w(cpu_uid, gpu_uid, setting)
            * self.node.power_scale
        )

    def solo_power_w(self, uid, kind, f_ghz: Hertz) -> Watts:
        return (
            self.inner.solo_power_w(uid, kind, f_ghz) * self.node.power_scale
        )

    # -- cap feasibility (mirrors CoRunPredictor on scaled values) ----------
    def feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w: Watts):
        return [
            s
            for s in self.processor.settings()
            if self.pair_power_w(cpu_uid, gpu_uid, s) <= cap_w
        ]

    def feasible_solo_levels(self, uid, kind, cap_w: Watts):
        domain = self.processor.device(kind).domain
        return [
            f for f in domain.levels if self.solo_power_w(uid, kind, f) <= cap_w
        ]

    def require_feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w: Watts):
        feasible = self.feasible_pair_settings(cpu_uid, gpu_uid, cap_w)
        if not feasible:
            raise InfeasibleCapError(
                f"no frequency setting keeps pair ({cpu_uid}, {gpu_uid}) "
                f"within the {cap_w} W cap on node {self.node.name}",
                cap_w=cap_w,
                jobs=(cpu_uid, gpu_uid),
                node=self.node.name,
            )
        return feasible

    def best_solo(self, uid, kind, cap_w: Watts) -> tuple[Hertz, Seconds]:
        feasible = self.feasible_solo_levels(uid, kind, cap_w)
        if not feasible:
            raise InfeasibleCapError(
                f"{uid} cannot run on {kind} under a {cap_w} W cap at any "
                f"level on node {self.node.name}",
                cap_w=cap_w,
                jobs=(uid,),
                node=self.node.name,
            )
        best_f = min(feasible, key=lambda f: self.solo_time(uid, kind, f))
        return best_f, self.solo_time(uid, kind, best_f)


def node_predictor(base, node: Node):
    """A predictor for ``node``: the base itself when the node is trivial.

    The trivial shortcut is what makes ``Fleet.single()`` byte-identical —
    no wrapper ever sits between the schedulers and the calibrated model.
    """
    if node.trivial:
        return base
    return NodePredictor(base, node)
