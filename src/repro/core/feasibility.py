"""Cap-feasibility arithmetic: the one home for frequency enumeration.

Every governor and scheduler has to answer the same three questions about
the power cap:

* what would the chip draw for this running combination at this setting?
* which settings keep that draw at or below the cap?
* what does it cost (in energy) to finish the running work at a setting?

Historically those answers were re-implemented in ``freqpolicy.py``, in
``objectives.py``, and inline in per-scheduler loops.  This module is the
single consumer of the predictor's enumeration queries inside
``repro.core``; everything else (ModelGovernor, BiasedGovernor,
EnergyAwareGovernor, partitioning, the lower bound) goes through it, so a
cap-feasibility fix lands everywhere at once.

All helpers take job *uids* (``None`` for an idle side), matching the
predictor's own vocabulary, and raise
:class:`~repro.errors.InfeasibleCapError` from the ``require_*`` variants
when no setting fits — the exception the CLI maps to exit code 2.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting


def predicted_power(
    predictor,
    cpu_uid: str | None,
    gpu_uid: str | None,
    setting: FrequencySetting,
) -> float:
    """Predicted chip power for an arbitrary running combination."""
    if cpu_uid is not None and gpu_uid is not None:
        return predictor.pair_power_w(cpu_uid, gpu_uid, setting)
    if cpu_uid is not None:
        return predictor.solo_power_w(cpu_uid, DeviceKind.CPU, setting.cpu_ghz)
    if gpu_uid is not None:
        return predictor.solo_power_w(gpu_uid, DeviceKind.GPU, setting.gpu_ghz)
    raise ValueError("no running job: chip power is undefined")


def pair_settings_under_cap(
    predictor, cpu_uid: str, gpu_uid: str, cap_w: float
) -> list[FrequencySetting]:
    """Frequency settings whose predicted pair power fits the cap."""
    return list(predictor.feasible_pair_settings(cpu_uid, gpu_uid, cap_w))


def solo_levels_under_cap(
    predictor, uid: str, kind: DeviceKind, cap_w: float
) -> list[float]:
    """Device frequency levels whose predicted solo power fits the cap."""
    return list(predictor.feasible_solo_levels(uid, kind, cap_w))


def require_pair_settings(
    predictor, cpu_uid: str, gpu_uid: str, cap_w: float
) -> list[FrequencySetting]:
    """Cap-feasible pair settings, raising when there are none."""
    feasible = pair_settings_under_cap(predictor, cpu_uid, gpu_uid, cap_w)
    if not feasible:
        raise InfeasibleCapError(
            f"pair ({cpu_uid}, {gpu_uid}) infeasible under "
            f"{cap_w} W: no frequency setting fits the cap",
            cap_w=cap_w,
            jobs=(cpu_uid, gpu_uid),
        )
    return feasible


def require_solo_levels(
    predictor, uid: str, kind: DeviceKind, cap_w: float
) -> list[float]:
    """Cap-feasible solo levels, raising when there are none."""
    levels = solo_levels_under_cap(predictor, uid, kind, cap_w)
    if not levels:
        raise InfeasibleCapError(
            f"{uid} infeasible under {cap_w} W on {kind.value}: "
            "no frequency level fits the cap",
            cap_w=cap_w,
            jobs=(uid,),
        )
    return levels


def first_setting_under_cap(
    predictor,
    cpu_uid: str | None,
    gpu_uid: str | None,
    cap_w: float,
    candidates: Iterable[FrequencySetting],
) -> FrequencySetting:
    """First candidate whose predicted power fits the cap, in given order.

    This is the biased governors' decision procedure: the caller encodes
    its bias purely in the candidate order.
    """
    for setting in candidates:
        if predicted_power(predictor, cpu_uid, gpu_uid, setting) <= cap_w:
            return setting
    raise InfeasibleCapError(
        f"no frequency setting satisfies the {cap_w} W cap for "
        f"({cpu_uid}, {gpu_uid})",
        cap_w=cap_w,
        jobs=tuple(uid for uid in (cpu_uid, gpu_uid) if uid is not None),
    )


def pair_energy_j(
    predictor, cpu_uid: str, gpu_uid: str, setting: FrequencySetting
) -> float:
    """Predicted energy to complete a co-running pair at ``setting``.

    Approximated as the predicted chip power times the summed predicted
    co-run times (both jobs must finish; power is roughly constant while
    they overlap).
    """
    power = predictor.pair_power_w(cpu_uid, gpu_uid, setting)
    t_c, t_g = predictor.corun_times(cpu_uid, gpu_uid, setting)
    return power * (t_c + t_g)


def solo_energy_j(predictor, uid: str, kind: DeviceKind, f_ghz: float) -> float:
    """Predicted energy to complete a solo job at level ``f_ghz``."""
    return predictor.solo_power_w(uid, kind, f_ghz) * predictor.solo_time(
        uid, kind, f_ghz
    )
