"""Cap-feasibility arithmetic: the one home for frequency enumeration.

Every governor and scheduler has to answer the same three questions about
the power cap:

* what would the chip draw for this running combination at this setting?
* which settings keep that draw at or below the cap?
* what does it cost (in energy) to finish the running work at a setting?

Historically those answers were re-implemented in ``freqpolicy.py``, in
``objectives.py``, and inline in per-scheduler loops.  This module is the
single consumer of the predictor's enumeration queries inside
``repro.core``; everything else (ModelGovernor, BiasedGovernor,
EnergyAwareGovernor, partitioning, the lower bound) goes through it, so a
cap-feasibility fix lands everywhere at once.

All helpers take job *uids* (``None`` for an idle side), matching the
predictor's own vocabulary, and raise
:class:`~repro.errors.InfeasibleCapError` from the ``require_*`` variants
when no setting fits — the exception the CLI maps to exit code 2.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.units import Hertz, Joules, Watts


def context_cap(ctx) -> Watts:
    """The effective scalar power cap of a *single-node* context.

    This is the one sanctioned way for schedulers to read a context's cap
    (lint rule REP009 flags raw ``ctx.cap_w`` plumbing elsewhere).  For the
    classic one-APU world it is exactly the old ``cap_w``; for a one-node
    fleet it is that node's resolved cap.  A multi-node context has no
    single cap — per-node sub-contexts derived by the fleet driver do —
    so asking for one raises.
    """
    fleet = getattr(ctx, "fleet", None)
    if fleet is not None and len(fleet.nodes) > 1:
        raise ValueError(
            f"context spans {len(fleet.nodes)} nodes and has no single cap; "
            "schedule through the fleet driver (repro.core.fleetsched) or "
            "derive a per-node sub-context"
        )
    return ctx.cap_w  # repro: noqa REP009 -- the sanctioned accessor itself


def predicted_power(
    predictor,
    cpu_uid: str | None,
    gpu_uid: str | None,
    setting: FrequencySetting,
) -> Watts:
    """Predicted chip power for an arbitrary running combination."""
    if cpu_uid is not None and gpu_uid is not None:
        return predictor.pair_power_w(cpu_uid, gpu_uid, setting)
    if cpu_uid is not None:
        return predictor.solo_power_w(cpu_uid, DeviceKind.CPU, setting.cpu_ghz)
    if gpu_uid is not None:
        return predictor.solo_power_w(gpu_uid, DeviceKind.GPU, setting.gpu_ghz)
    raise ValueError("no running job: chip power is undefined")


def pair_settings_under_cap(
    predictor, cpu_uid: str, gpu_uid: str, cap_w: Watts
) -> list[FrequencySetting]:
    """Frequency settings whose predicted pair power fits the cap."""
    return list(predictor.feasible_pair_settings(cpu_uid, gpu_uid, cap_w))


def solo_levels_under_cap(
    predictor, uid: str, kind: DeviceKind, cap_w: Watts
) -> list[float]:
    """Device frequency levels whose predicted solo power fits the cap."""
    return list(predictor.feasible_solo_levels(uid, kind, cap_w))


def require_pair_settings(
    predictor, cpu_uid: str, gpu_uid: str, cap_w: Watts
) -> list[FrequencySetting]:
    """Cap-feasible pair settings, raising when there are none."""
    feasible = pair_settings_under_cap(predictor, cpu_uid, gpu_uid, cap_w)
    if not feasible:
        raise InfeasibleCapError(
            f"pair ({cpu_uid}, {gpu_uid}) infeasible under "
            f"{cap_w} W: no frequency setting fits the cap",
            cap_w=cap_w,
            jobs=(cpu_uid, gpu_uid),
        )
    return feasible


def require_solo_levels(
    predictor, uid: str, kind: DeviceKind, cap_w: Watts
) -> list[float]:
    """Cap-feasible solo levels, raising when there are none."""
    levels = solo_levels_under_cap(predictor, uid, kind, cap_w)
    if not levels:
        raise InfeasibleCapError(
            f"{uid} infeasible under {cap_w} W on {kind.value}: "
            "no frequency level fits the cap",
            cap_w=cap_w,
            jobs=(uid,),
        )
    return levels


def fleet_predicted_power(node_states) -> Watts:
    """Fleet-level predicted power: per-node draws summed.

    ``node_states`` is an iterable of ``(predictor, cpu_uid, gpu_uid,
    setting)`` tuples, one per node — the predictor being that node's
    (scaled) view of the model.  Fully idle nodes contribute nothing.
    This is the quantity a shared fleet budget constrains; the invariant
    verifier sweeps it across power segments.
    """
    total = 0.0
    for predictor, cpu_uid, gpu_uid, setting in node_states:
        if cpu_uid is None and gpu_uid is None:
            continue
        total += predicted_power(predictor, cpu_uid, gpu_uid, setting)
    return total


def require_pair_settings_on(
    predictor, node_name: str, cpu_uid: str, gpu_uid: str, cap_w: Watts
) -> list[FrequencySetting]:
    """Node-aware :func:`require_pair_settings`: the error names the node."""
    feasible = pair_settings_under_cap(predictor, cpu_uid, gpu_uid, cap_w)
    if not feasible:
        raise InfeasibleCapError(
            f"pair ({cpu_uid}, {gpu_uid}) infeasible under {cap_w} W on "
            f"node {node_name}: no frequency setting fits the cap",
            cap_w=cap_w,
            jobs=(cpu_uid, gpu_uid),
            node=node_name,
        )
    return feasible


def require_solo_levels_on(
    predictor, node_name: str, uid: str, kind: DeviceKind, cap_w: Watts
) -> list[float]:
    """Node-aware :func:`require_solo_levels`: the error names the node."""
    levels = solo_levels_under_cap(predictor, uid, kind, cap_w)
    if not levels:
        raise InfeasibleCapError(
            f"{uid} infeasible under {cap_w} W on {kind.value} of node "
            f"{node_name}: no frequency level fits the cap",
            cap_w=cap_w,
            jobs=(uid,),
            node=node_name,
        )
    return levels


def first_setting_under_cap(
    predictor,
    cpu_uid: str | None,
    gpu_uid: str | None,
    cap_w: Watts,
    candidates: Iterable[FrequencySetting],
) -> FrequencySetting:
    """First candidate whose predicted power fits the cap, in given order.

    This is the biased governors' decision procedure: the caller encodes
    its bias purely in the candidate order.
    """
    for setting in candidates:
        if predicted_power(predictor, cpu_uid, gpu_uid, setting) <= cap_w:
            return setting
    raise InfeasibleCapError(
        f"no frequency setting satisfies the {cap_w} W cap for "
        f"({cpu_uid}, {gpu_uid})",
        cap_w=cap_w,
        jobs=tuple(uid for uid in (cpu_uid, gpu_uid) if uid is not None),
    )


def pair_energy_j(
    predictor, cpu_uid: str, gpu_uid: str, setting: FrequencySetting
) -> Joules:
    """Predicted energy to complete a co-running pair at ``setting``.

    Approximated as the predicted chip power times the summed predicted
    co-run times (both jobs must finish; power is roughly constant while
    they overlap).
    """
    power = predictor.pair_power_w(cpu_uid, gpu_uid, setting)
    t_c, t_g = predictor.corun_times(cpu_uid, gpu_uid, setting)
    return power * (t_c + t_g)


def solo_energy_j(predictor, uid: str, kind: DeviceKind, f_ghz: Hertz) -> Joules:
    """Predicted energy to complete a solo job at level ``f_ghz``."""
    return predictor.solo_power_w(uid, kind, f_ghz) * predictor.solo_time(
        uid, kind, f_ghz
    )
