"""A*-search co-scheduling (the comparator the paper discusses).

The paper's related work cites Tian et al.'s A*-search for co-scheduling on
homogeneous multicores and argues it does not answer the heterogeneous
questions (placement, per-pair frequencies under a cap).  This module
*extends* A* to do exactly that, as a strong search-based comparator for
HCS: it explores queue prefixes of the Definition 2.1 schedule space under
the same predicted performance model and the same cap-aware governor.

Search formulation
------------------

A node is a partially executed predicted timeline: the set of unscheduled
jobs, the job currently running on each processor with its remaining work
fraction, and the elapsed predicted time.  Expanding a node advances the
timeline to the next completion; the branching decision is which remaining
job to hand the idle processor (or to close that processor's queue —
allowing schedules that deliberately leave one side idle, which Definition
2.1 permits).

``g`` is the elapsed predicted time.  The default heuristic ``h`` is the
paper's own lower-bound arithmetic restricted to the unfinished work: half
the sum over remaining jobs of ``min(best co-run time, 2 x best standalone
time)``, which under-estimates the remaining makespan for the same reason
Section IV-B's bound under-estimates the total.  ``h = 0`` degenerates to
uniform-cost search and is guaranteed optimal under the predicted model;
tests cross-check the default heuristic against it.

Complexity is exponential (the problem is NP-hard); the search is intended
for ≤ 8-job instances and supports a node budget with graceful fallback to
the best completed node so far.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.bounds import lower_bound
from repro.core.context import SchedulingContext
from repro.core.schedule import CoSchedule
from repro.model.predictor import CoRunPredictor
from repro.perf.cache import EvalCache
from repro.perf.evaluator import CachingPredictor

_EPS = 1e-9


@dataclass(frozen=True)
class _Node:
    """One partial predicted timeline."""

    remaining: frozenset          # uids not yet started
    cpu_job: str | None           # running CPU job (uid) or None
    cpu_frac: float               # its remaining work fraction
    gpu_job: str | None
    gpu_frac: float
    cpu_closed: bool              # True once the CPU queue is sealed
    gpu_closed: bool
    elapsed: float
    cpu_order: tuple[str, ...]    # queue prefixes chosen so far
    gpu_order: tuple[str, ...]

    @property
    def done(self) -> bool:
        return (
            not self.remaining and self.cpu_job is None and self.gpu_job is None
        )


@dataclass(order=True)
class _QueueEntry:
    priority: float
    tiebreak: int
    node: _Node = field(compare=False)


class AStarScheduler:
    """Cap-aware A* search over two-queue co-schedules."""

    def __init__(
        self,
        predictor: CoRunPredictor | SchedulingContext,
        jobs: Sequence[Job] | None = None,
        cap_w: float | None = None,
        *,
        use_heuristic: bool = True,
        node_budget: int = 200_000,
        cache: EvalCache | None = None,
    ) -> None:
        # Expansion re-queries the same (pair, setting) degradations along
        # every branch of the search tree; a caching wrapper collapses the
        # cost.  Callers pass a shared EvalCache (or a context) to reuse
        # answers computed by HCS/GA/refinement on the same instance.
        if (
            cache is not None
            and not isinstance(predictor, SchedulingContext)
            and not isinstance(predictor, CachingPredictor)
        ):
            predictor = CachingPredictor(predictor, cache)
        ctx = SchedulingContext.coerce(predictor, jobs, cap_w, cache=cache)
        predictor, jobs = ctx.predictor, ctx.jobs
        self.predictor = predictor
        self.jobs = {j.uid: j for j in jobs}
        if len(self.jobs) != len(jobs):
            raise ValueError("job uids must be unique")
        from repro.core.feasibility import context_cap

        self.cap_w = context_cap(ctx)
        # g is always the elapsed predicted time; a non-makespan context
        # still steers the search through its governor's frequency picks.
        self.governor = ctx.governor
        self.use_heuristic = use_heuristic
        self.node_budget = node_budget
        self._h_cache: dict[frozenset, float] = {}
        self._contribution: dict[str, float] = self._per_job_contributions(jobs)

    # ------------------------------------------------------------------
    # Heuristic
    # ------------------------------------------------------------------
    def _per_job_contributions(self, jobs: Sequence[Job]) -> dict[str, float]:
        _, details = lower_bound(self.predictor, jobs, self.cap_w)
        return {d.job: d.contribution_s for d in details}

    def _heuristic(self, node: _Node) -> float:
        if not self.use_heuristic:
            return 0.0
        key = node.remaining
        if key not in self._h_cache:
            self._h_cache[key] = 0.5 * sum(
                self._contribution[uid] for uid in key
            )
        h = self._h_cache[key]
        # Work still held by the running jobs also bounds the remaining span.
        running = 0.0
        if node.cpu_job is not None:
            running += 0.5 * node.cpu_frac * self._contribution[node.cpu_job]
        if node.gpu_job is not None:
            running += 0.5 * node.gpu_frac * self._contribution[node.gpu_job]
        return h + running

    # ------------------------------------------------------------------
    # Timeline advancement (mirrors core.schedule.predicted_makespan)
    # ------------------------------------------------------------------
    def _rates(self, node: _Node) -> tuple[float | None, float | None]:
        """Full predicted completion times for the running pair."""
        cpu_job = self.jobs[node.cpu_job] if node.cpu_job else None
        gpu_job = self.jobs[node.gpu_job] if node.gpu_job else None
        setting = self.governor(cpu_job, gpu_job)
        if cpu_job is not None and gpu_job is not None:
            return self.predictor.corun_times(cpu_job.uid, gpu_job.uid, setting)
        if cpu_job is not None:
            return (
                self.predictor.solo_time(
                    cpu_job.uid, DeviceKind.CPU, setting.cpu_ghz
                ),
                None,
            )
        if gpu_job is not None:
            return (
                None,
                self.predictor.solo_time(
                    gpu_job.uid, DeviceKind.GPU, setting.gpu_ghz
                ),
            )
        return None, None

    def _advance(self, node: _Node) -> _Node:
        """Advance the timeline until at least one processor goes idle."""
        t_c, t_g = self._rates(node)
        dts = []
        if node.cpu_job is not None:
            dts.append(node.cpu_frac * t_c)
        if node.gpu_job is not None:
            dts.append(node.gpu_frac * t_g)
        if not dts:
            return node
        dt = min(dts)

        cpu_job, cpu_frac = node.cpu_job, node.cpu_frac
        gpu_job, gpu_frac = node.gpu_job, node.gpu_frac
        if cpu_job is not None:
            cpu_frac -= dt / t_c
            if cpu_frac <= _EPS:
                cpu_job, cpu_frac = None, 0.0
        if gpu_job is not None:
            gpu_frac -= dt / t_g
            if gpu_frac <= _EPS:
                gpu_job, gpu_frac = None, 0.0
        return _Node(
            remaining=node.remaining,
            cpu_job=cpu_job,
            cpu_frac=cpu_frac,
            gpu_job=gpu_job,
            gpu_frac=gpu_frac,
            cpu_closed=node.cpu_closed,
            gpu_closed=node.gpu_closed,
            elapsed=node.elapsed + dt,
            cpu_order=node.cpu_order,
            gpu_order=node.gpu_order,
        )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _successors(self, node: _Node):
        """Fill idle processors with every remaining job (or close them)."""
        idle_sides = []
        if node.cpu_job is None and not node.cpu_closed:
            idle_sides.append("cpu")
        if node.gpu_job is None and not node.gpu_closed:
            idle_sides.append("gpu")
        if not idle_sides or not node.remaining:
            yield self._advance(node)
            return

        side = idle_sides[0]  # fill one side per expansion; the successor
        # re-enters expansion if the other side is idle too.
        for uid in sorted(node.remaining):
            if side == "cpu":
                yield _Node(
                    remaining=node.remaining - {uid},
                    cpu_job=uid,
                    cpu_frac=1.0,
                    gpu_job=node.gpu_job,
                    gpu_frac=node.gpu_frac,
                    cpu_closed=False,
                    gpu_closed=node.gpu_closed,
                    elapsed=node.elapsed,
                    cpu_order=node.cpu_order + (uid,),
                    gpu_order=node.gpu_order,
                )
            else:
                yield _Node(
                    remaining=node.remaining - {uid},
                    cpu_job=node.cpu_job,
                    cpu_frac=node.cpu_frac,
                    gpu_job=uid,
                    gpu_frac=1.0,
                    cpu_closed=node.cpu_closed,
                    gpu_closed=False,
                    elapsed=node.elapsed,
                    cpu_order=node.cpu_order,
                    gpu_order=node.gpu_order + (uid,),
                )
        # Close the side: no further jobs will be placed there.
        yield _Node(
            remaining=node.remaining,
            cpu_job=node.cpu_job,
            cpu_frac=node.cpu_frac,
            gpu_job=node.gpu_job,
            gpu_frac=node.gpu_frac,
            cpu_closed=node.cpu_closed or side == "cpu",
            gpu_closed=node.gpu_closed or side == "gpu",
            elapsed=node.elapsed,
            cpu_order=node.cpu_order,
            gpu_order=node.gpu_order,
        )

    def _needs_fill(self, node: _Node) -> bool:
        return bool(node.remaining) and (
            (node.cpu_job is None and not node.cpu_closed)
            or (node.gpu_job is None and not node.gpu_closed)
        )

    def _stuck(self, node: _Node) -> bool:
        """Both sides closed with jobs left over: a dead end."""
        return bool(node.remaining) and node.cpu_closed and node.gpu_closed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self) -> tuple[CoSchedule, float, int]:
        """Run the search.

        Returns ``(schedule, predicted makespan, nodes expanded)``.  When
        the node budget is exhausted, the best *completed* candidate found
        so far is returned (there is always one: the first dive reaches a
        goal quickly).
        """
        start = _Node(
            remaining=frozenset(self.jobs),
            cpu_job=None,
            cpu_frac=0.0,
            gpu_job=None,
            gpu_frac=0.0,
            cpu_closed=False,
            gpu_closed=False,
            elapsed=0.0,
            cpu_order=(),
            gpu_order=(),
        )
        counter = itertools.count()
        frontier = [_QueueEntry(self._heuristic(start), next(counter), start)]
        best_goal: _Node | None = None
        best_goal_cost = math.inf
        expanded = 0

        while frontier and expanded < self.node_budget:
            entry = heapq.heappop(frontier)
            node = entry.node
            if entry.priority >= best_goal_cost - _EPS:
                break  # nothing cheaper can remain
            if node.done:
                if node.elapsed < best_goal_cost:
                    best_goal, best_goal_cost = node, node.elapsed
                continue
            if self._stuck(node):
                continue
            expanded += 1
            if self._needs_fill(node):
                children = self._successors(node)
            else:
                children = [self._advance(node)]
            for child in children:
                if self._stuck(child):
                    continue
                priority = child.elapsed + self._heuristic(child)
                if priority < best_goal_cost - _EPS:
                    heapq.heappush(
                        frontier, _QueueEntry(priority, next(counter), child)
                    )

        if best_goal is None:
            raise RuntimeError(
                "A* exhausted its budget before completing any schedule"
            )
        schedule = CoSchedule(
            cpu_queue=tuple(self.jobs[uid] for uid in best_goal.cpu_order),
            gpu_queue=tuple(self.jobs[uid] for uid in best_goal.gpu_order),
        )
        return schedule, best_goal_cost, expanded


def astar_schedule(
    predictor: CoRunPredictor | SchedulingContext,
    jobs: Sequence[Job] | None = None,
    cap_w: float | None = None,
    *,
    use_heuristic: bool = True,
    node_budget: int = 200_000,
    cache: EvalCache | None = None,
) -> tuple[CoSchedule, float, int]:
    """Convenience wrapper around :class:`AStarScheduler`."""
    return AStarScheduler(
        predictor,
        jobs,
        cap_w,
        use_heuristic=use_heuristic,
        node_budget=node_budget,
        cache=cache,
    ).search()
