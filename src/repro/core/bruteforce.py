"""Exhaustive search for the best co-schedule of small instances.

The optimal co-scheduling problem is NP-hard (Section IV), so exhaustive
search is only viable for a handful of jobs — which is exactly what the
test suite needs: a trustworthy optimum to hold the heuristic and the lower
bound against.

The search enumerates every assignment of jobs to {CPU queue, GPU queue,
solo tail} and every ordering of the two queues, evaluating each candidate
with the supplied evaluation function (predicted makespan by default, or the
ground-truth engine).  Queue order within the solo tail does not affect the
makespan, so tail permutations are skipped.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.schedule import CoSchedule
from repro.perf.executor import SerialExecutor, make_executor

#: Enumerating beyond this many jobs is a bug, not a test.
MAX_BRUTE_FORCE_JOBS = 7

#: Schedules evaluated per executor task when the search fans out.
_CHUNK = 256


def enumerate_schedules(
    jobs: Sequence[Job], *, include_solo: bool = True
):
    """Yield every distinct co-schedule of ``jobs``.

    With ``include_solo`` False, only two-queue schedules are generated
    (3^n drops to 2^n assignments).
    """
    n = len(jobs)
    if n > MAX_BRUTE_FORCE_JOBS:
        raise ValueError(
            f"refusing to enumerate {n} jobs (max {MAX_BRUTE_FORCE_JOBS})"
        )
    placements = (
        itertools.product(("cpu", "gpu", "solo"), repeat=n)
        if include_solo
        else itertools.product(("cpu", "gpu"), repeat=n)
    )
    for placement in placements:
        cpu_set = [j for j, p in zip(jobs, placement) if p == "cpu"]
        gpu_set = [j for j, p in zip(jobs, placement) if p == "gpu"]
        solo_set = [j for j, p in zip(jobs, placement) if p == "solo"]
        solo_variants = (
            itertools.product(tuple(DeviceKind), repeat=len(solo_set))
            if solo_set
            else [()]
        )
        for cpu_perm in itertools.permutations(cpu_set):
            for gpu_perm in itertools.permutations(gpu_set):
                for kinds in solo_variants:
                    yield CoSchedule(
                        cpu_queue=cpu_perm,
                        gpu_queue=gpu_perm,
                        solo_tail=tuple(zip(solo_set, kinds)),
                    )


def _chunks(iterable, size: int):
    it = iter(iterable)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


def brute_force_best(
    jobs: Sequence[Job],
    evaluate: Callable[[CoSchedule], float],
    *,
    include_solo: bool = True,
    executor=None,
) -> tuple[CoSchedule, float]:
    """Best schedule under ``evaluate`` (lower is better) and its score.

    With an ``executor`` (see :func:`repro.perf.make_executor`) the
    enumeration is evaluated in fixed-size chunks fanned across workers.
    Ties always resolve to the earliest schedule in enumeration order, so
    the winner is independent of the backend.  The ``processes`` backend
    requires a picklable ``evaluate`` (e.g. a
    :class:`~repro.perf.evaluator.ScheduleEvaluator`, not a local closure).
    """
    if not jobs:
        raise ValueError("cannot search over an empty job set")
    best_schedule: CoSchedule | None = None
    best_score = math.inf
    pool = make_executor(executor)
    schedules = enumerate_schedules(jobs, include_solo=include_solo)
    if isinstance(pool, SerialExecutor):
        batch = getattr(evaluate, "evaluate_batch", None)
        if batch is not None:
            # Tensor-backed evaluators score a whole chunk in one lockstep
            # sweep; strict ``<`` keeps the earliest-in-order tie winner.
            for chunk in _chunks(schedules, _CHUNK):
                for schedule, score in zip(chunk, batch(chunk)):
                    if score < best_score:
                        best_schedule, best_score = schedule, score
        else:
            for schedule in schedules:
                score = evaluate(schedule)
                if score < best_score:
                    best_schedule, best_score = schedule, score
    else:
        for chunk in _chunks(schedules, _CHUNK):
            for schedule, score in zip(chunk, pool.map(evaluate, chunk)):
                if score < best_score:
                    best_schedule, best_score = schedule, score
    if best_schedule is None:
        raise ValueError("no schedules enumerated (empty job set?)")
    return best_schedule, best_score
