"""Step 2 of the heuristic: processor-preference categorization.

Each co-run candidate is labeled CPU-preferred, GPU-preferred, or
non-preferred by comparing its execution times on the two processors *at
the highest frequency allowed by the power cap* (the IV-A.2 change).  A
relative difference at or below the threshold D — empirically 20% in the
paper — means no preference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.model.predictor import CoRunPredictor

#: The paper's empirically selected preference threshold.
DEFAULT_THRESHOLD = 0.20


class Preference(enum.Enum):
    """Which processor a job prefers."""

    CPU = "cpu"
    GPU = "gpu"
    NONE = "non-preferred"


@dataclass(frozen=True)
class Categorized:
    """Step 2 output: the three preference sets, order-preserving."""

    cpu_preferred: tuple[Job, ...]
    gpu_preferred: tuple[Job, ...]
    non_preferred: tuple[Job, ...]

    def of(self, preference: Preference) -> tuple[Job, ...]:
        if preference is Preference.CPU:
            return self.cpu_preferred
        if preference is Preference.GPU:
            return self.gpu_preferred
        return self.non_preferred


def job_preference(
    predictor: CoRunPredictor,
    job: Job,
    cap_w: float,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Preference:
    """Classify one job.

    The comparison times are the standalone runs at the fastest cap-feasible
    level of each device.  If the job cannot run under the cap on one device
    at all, it trivially prefers the other.
    """
    try:
        _, t_cpu = predictor.best_solo(job.uid, DeviceKind.CPU, cap_w)
    except ValueError:
        return Preference.GPU
    try:
        _, t_gpu = predictor.best_solo(job.uid, DeviceKind.GPU, cap_w)
    except ValueError:
        return Preference.CPU
    diff = abs(t_cpu - t_gpu) / min(t_cpu, t_gpu)
    if diff <= threshold:
        return Preference.NONE
    return Preference.CPU if t_cpu < t_gpu else Preference.GPU


def categorize_jobs(
    predictor: CoRunPredictor,
    jobs: Sequence[Job],
    cap_w: float,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Categorized:
    """Classify every job into the three preference sets."""
    buckets: dict[Preference, list[Job]] = {p: [] for p in Preference}
    for job in jobs:
        buckets[job_preference(predictor, job, cap_w, threshold=threshold)].append(job)
    return Categorized(
        cpu_preferred=tuple(buckets[Preference.CPU]),
        gpu_preferred=tuple(buckets[Preference.GPU]),
        non_preferred=tuple(buckets[Preference.NONE]),
    )
