"""Fleet scheduling driver: place jobs across nodes, schedule each node.

A multi-node :class:`~repro.core.context.SchedulingContext` is a placement
problem stacked on top of the paper's single-APU co-scheduling problem.
This driver solves it in two phases:

1. **Placement** — greedy longest-processing-time list scheduling: jobs are
   weighted by their fastest cap-feasible standalone time *on each node*
   (so a 1.5x node attracts proportionally more work, and a node whose cap
   cannot run a job at any level never receives it), sorted by descending
   weight, and assigned one at a time to the node with the least projected
   load.
2. **Per-node co-scheduling** — each node's jobs are handed to the chosen
   registry method on a single-node sub-context derived with
   :meth:`~repro.core.context.SchedulingContext.node_context` (the node's
   scaling, resolved cap, fresh cache, per-node seed).  Every registry
   method, both backends, and all objectives work unchanged.

Aggregation is objective-aware: makespan is the max over nodes (they run
in parallel), energy and flow are sums, and the composite objectives
combine those aggregates in the same shape as
:meth:`~repro.core.objectives.Objective.score`.

Sanitizing contexts referee both levels: each per-node schedule passes
through the standard Definition 2.1 verifier, and the fleet result through
:func:`repro.analysis.invariants.check_fleet_schedule` (partition
integrity, per-node caps, shared-budget accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Mapping, Sequence

from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.context import SchedulingContext
from repro.core.objectives import MAKESPAN_ENERGY_RHO, Objective
from repro.core.schedule import PredictedMetrics

_INF = float("inf")


@dataclass(frozen=True)
class NodeAssignment:
    """One node's slice of a fleet schedule."""

    node: str
    jobs: tuple[Job, ...]
    result: object  #: the node's :class:`~repro.core.api.ScheduleResult`
    metrics: PredictedMetrics

    @property
    def schedule(self):
        return self.result.schedule


@dataclass(frozen=True)
class FleetScheduleResult:
    """A fleet-wide schedule: per-node co-schedules plus aggregate scores.

    ``predicted_makespan_s`` is the max over nodes (nodes run in
    parallel); ``predicted_energy_j`` and ``predicted_flow_s`` are sums;
    ``predicted_score`` combines them under the objective.  Nodes that
    received no jobs appear in ``idle_nodes`` rather than
    ``assignments``.
    """

    method: str
    fleet: object
    objective: Objective
    assignments: tuple[NodeAssignment, ...]
    idle_nodes: tuple[str, ...] = ()
    predicted_makespan_s: float = 0.0
    predicted_energy_j: float = 0.0
    predicted_flow_s: float = 0.0
    predicted_score: float = 0.0
    details: Mapping[str, object] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def assignment(self, node: str) -> NodeAssignment:
        for a in self.assignments:
            if a.node == node:
                return a
        raise KeyError(f"node {node!r} has no assignment")

    def describe(self) -> str:
        lines = []
        for a in self.assignments:
            lines.append(
                f"== {a.node} ({len(a.jobs)} jobs, "
                f"makespan {a.metrics.makespan_s:.3f} s) =="
            )
            lines.append(a.schedule.describe())
        if self.idle_nodes:
            lines.append("idle: " + ", ".join(self.idle_nodes))
        return "\n".join(lines)


def aggregate_score(
    objective: Objective, metrics: Sequence[PredictedMetrics]
) -> tuple[float, float, float, float]:
    """(makespan, energy, flow, objective score) across parallel nodes."""
    makespan = max((m.makespan_s for m in metrics), default=0.0)
    energy = sum(m.energy_j for m in metrics)
    flow = sum(m.flow_s for m in metrics)
    if objective is Objective.MAKESPAN:
        score = makespan
    elif objective is Objective.ENERGY:
        score = energy
    elif objective is Objective.EDP:
        score = energy * makespan
    elif objective is Objective.MAKESPAN_ENERGY:
        score = makespan + MAKESPAN_ENERGY_RHO * energy
    else:
        score = flow
    return makespan, energy, flow, score


def _job_weights(
    ctx: SchedulingContext, node_ctxs: Sequence[SchedulingContext]
) -> dict[str, list[float]]:
    """Fastest cap-feasible standalone time of each job on each node.

    ``inf`` marks a (job, node) pair the node's cap cannot run at any
    level on either device — placement never selects it.
    """
    weights: dict[str, list[float]] = {}
    for job in ctx.jobs:
        per_node = []
        for nctx in node_ctxs:
            best = _INF
            for kind in DeviceKind:
                try:
                    _, t = nctx.predictor.best_solo(
                        job.uid, kind, nctx.cap_w  # repro: noqa REP009 -- single-node sub-context cap
                    )
                except InfeasibleCapError:
                    continue
                best = min(best, t)
            per_node.append(best)
        if all(w == _INF for w in per_node):
            raise InfeasibleCapError(
                f"{job.uid} cannot run on any fleet node under its cap",
                jobs=(job.uid,),
            )
        weights[job.uid] = per_node
    return weights


def place_jobs(
    ctx: SchedulingContext,
    node_ctxs: Sequence[SchedulingContext] | None = None,
) -> list[list[Job]]:
    """Greedy LPT placement of the context's jobs onto its fleet's nodes.

    Deterministic: jobs are processed in descending weight order (ties by
    uid), each landing on the feasible node with the least projected load
    (ties by node order).  Returns one job list per node, in fleet order.
    """
    fleet = ctx.fleet
    if node_ctxs is None:
        node_ctxs = [
            ctx.node_context(i, jobs=ctx.jobs) for i in range(len(fleet.nodes))
        ]
    weights = _job_weights(ctx, node_ctxs)
    order = sorted(
        ctx.jobs,
        key=lambda j: (
            -min(w for w in weights[j.uid] if w != _INF),
            j.uid,
        ),
    )
    loads = [0.0] * len(fleet.nodes)
    buckets: list[list[Job]] = [[] for _ in fleet.nodes]
    for job in order:
        per_node = weights[job.uid]
        best_i = min(
            (i for i in range(len(fleet.nodes)) if per_node[i] != _INF),
            key=lambda i: (loads[i] + per_node[i], i),
        )
        buckets[best_i].append(job)
        loads[best_i] += per_node[best_i]
    return buckets


def fleet_schedule(
    ctx: SchedulingContext, method: str = "hcs+", **opts
) -> FleetScheduleResult:
    """Schedule a multi-node context's jobs across its fleet.

    Works on single-node contexts too (placement is then trivial), so
    callers can treat every fleet uniformly.  ``method`` and ``opts`` are
    the registry vocabulary of :func:`repro.core.api.schedule`.
    """
    from repro.core.api import _REGISTRY, _finalize, scheduler_names

    key = method.lower()
    try:
        adapter = _REGISTRY[key]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise ValueError(f"unknown scheduler {method!r}; known: {known}") from None

    fleet = ctx.fleet
    node_ctxs = [
        ctx.node_context(i, jobs=ctx.jobs) for i in range(len(fleet.nodes))
    ]
    buckets = place_jobs(ctx, node_ctxs)

    assignments = []
    idle = []
    for i, node in enumerate(fleet.nodes):
        jobs = buckets[i]
        if not jobs:
            idle.append(node.name)
            continue
        sub = ctx.node_context(i, jobs=jobs)
        result = _finalize(adapter(sub, **opts), sub)
        metrics = sub.metrics(result.schedule)
        assignments.append(
            NodeAssignment(
                node=node.name,
                jobs=tuple(jobs),
                result=result,
                metrics=metrics,
            )
        )
    makespan, energy, flow, score = aggregate_score(
        ctx.objective, [a.metrics for a in assignments]
    )
    out = FleetScheduleResult(
        method=key,
        fleet=fleet,
        objective=ctx.objective,
        assignments=tuple(assignments),
        idle_nodes=tuple(idle),
        predicted_makespan_s=makespan,
        predicted_energy_j=energy,
        predicted_flow_s=flow,
        predicted_score=score,
    )
    if ctx.sanitizing:
        from repro.analysis.invariants import check_fleet_schedule

        check_fleet_schedule(ctx, out, where=f"fleet:{key}")
    return out
