"""Racing portfolio scheduler: try several registry methods, keep the best.

The registry methods trade quality for time very differently — ``hcs`` is
instant, ``hcs+`` adds cheap refinement, ``genetic`` searches (and on the
tensor backend, searches fast).  A portfolio races a configurable member
list under a shared wall-clock deadline and evaluation budget and returns
the best feasible schedule per the context objective, echoing the anytime
framing of Phan et al.'s GA co-scheduling (the paper's reference [23]) and
the multi-policy comparisons in "Co-Scheduling Algorithms for
High-Throughput Workload Execution".

Members run sequentially over the *same* context, so every later member
starts with the earlier members' evaluator cache warm — racing is additive
work, not repeated work.  The first member always runs (a portfolio always
returns a schedule when any member can produce one); before each further
member the elapsed time is checked against ``deadline_s`` and the
cumulative evaluation count against ``eval_budget``.  A member that raises
:class:`~repro.errors.InfeasibleCapError` is recorded and skipped; only if
*every* member fails does the portfolio re-raise the last error.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from types import MappingProxyType

from repro.core.context import SchedulingContext
from repro.errors import InfeasibleCapError

#: Default race: the instant heuristic, its refined variant, then the GA —
#: ordered cheapest-first so budget exhaustion degrades quality gracefully.
DEFAULT_MEMBERS = ("hcs", "hcs+", "genetic")


def _eval_count(ctx: SchedulingContext) -> float:
    """Evaluations charged so far: cache misses plus population lanes.

    Per-schedule evaluations all land as evaluator-cache misses (batched
    ``evaluate_all`` adjusts the miss count per schedule); population
    lanes scored by ``score_population`` never touch the cache, so the
    tensor backend's ``population_schedules`` counter is added on top.
    """
    snap = ctx.evaluator.snapshot()
    return float(
        snap.get("cache_misses", 0.0)
        + snap.get("tensor_population_schedules", 0.0)
    )


def portfolio_schedule(
    ctx: SchedulingContext,
    *,
    members: Sequence[str] = DEFAULT_MEMBERS,
    deadline_s: float | None = None,
    eval_budget: int | None = None,
    member_opts: dict[str, dict] | None = None,
):
    """Race ``members`` on ``ctx``; return ``(result, stats)``.

    ``result`` is the winning member's raw
    :class:`~repro.core.api.ScheduleResult` (best ``predicted_score``,
    strict ``<`` so earlier members win ties); ``stats`` maps each member
    name to ``{score, makespan_s, wall_s, evals}``, with ``error`` for
    members that raised :class:`InfeasibleCapError` and ``skipped`` for
    members the deadline or evaluation budget cut off.  ``member_opts``
    forwards method-specific keyword options to named members.
    """
    from repro.core.api import _REGISTRY, scheduler_names

    if not members:
        raise ValueError("portfolio needs at least one member method")
    adapters = {}
    for name in members:
        key = name.lower()
        if key == "portfolio":
            raise ValueError("a portfolio cannot race itself")
        if key not in _REGISTRY:
            known = ", ".join(n for n in scheduler_names() if n != "portfolio")
            raise ValueError(
                f"unknown portfolio member {name!r}; known: {known}"
            )
        adapters[key] = _REGISTRY[key]
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if eval_budget is not None and eval_budget <= 0:
        raise ValueError("eval_budget must be positive")

    opts = member_opts or {}
    start = time.perf_counter()
    evals0 = _eval_count(ctx)
    stats: dict[str, dict] = {}
    best = None
    winner = ""
    last_error: InfeasibleCapError | None = None
    for pos, (key, adapter) in enumerate(adapters.items()):
        elapsed = time.perf_counter() - start
        spent = _eval_count(ctx) - evals0
        if pos > 0 and deadline_s is not None and elapsed >= deadline_s:
            stats[key] = {"skipped": "deadline", "wall_s": elapsed}
            continue
        if pos > 0 and eval_budget is not None and spent >= eval_budget:
            stats[key] = {"skipped": "eval_budget", "evals": spent}
            continue
        t0 = time.perf_counter()
        try:
            result = adapter(ctx, **opts.get(key, {}))
        except InfeasibleCapError as exc:
            last_error = exc
            stats[key] = {
                "error": str(exc),
                "wall_s": time.perf_counter() - t0,
                "evals": _eval_count(ctx) - evals0 - spent,
            }
            continue
        stats[key] = {
            "score": float(result.predicted_score),
            "makespan_s": float(result.predicted_makespan_s),
            "wall_s": time.perf_counter() - t0,
            "evals": _eval_count(ctx) - evals0 - spent,
        }
        if best is None or result.predicted_score < best.predicted_score:
            best = result
            winner = key
    if best is None:
        assert last_error is not None
        raise last_error
    stats[winner]["winner"] = True
    return best, MappingProxyType(stats)
