"""Step 3 of the heuristic: greedy minimum-interference pairing.

The scheduling rule (Section IV-A.1, Figure 3):

* To fill a processor, draw from its preferred set first, then the
  non-preferred set, and only then from the set preferring the other
  processor.
* Bootstrap by placing the *longest* GPU-preferred job on the GPU, then the
  CPU job with the least predicted co-run interference with it.
* Whenever a job finishes, refill its processor with the candidate whose
  predicted interference with the still-running job is smallest —
  interference being the minimal sum of the two degradation percentages
  over all cap-feasible frequency settings (the IV-A.2 change).

The greedy loop replays predicted progress exactly like
:func:`repro.core.schedule.predicted_makespan`, so the resulting queue order
is the one the runtime expects to happen.
"""

from __future__ import annotations

import math

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.categorize import Categorized, Preference
from repro.core.freqpolicy import ModelGovernor
from repro.model.predictor import CoRunPredictor

_EPS = 1e-12


def _pool_priority(kind: DeviceKind) -> tuple[Preference, ...]:
    if kind is DeviceKind.CPU:
        return (Preference.CPU, Preference.NONE, Preference.GPU)
    return (Preference.GPU, Preference.NONE, Preference.CPU)


class _GreedyState:
    def __init__(
        self,
        predictor: CoRunPredictor,
        categorized: Categorized,
        cap_w: float,
        governor: ModelGovernor,
    ) -> None:
        self.predictor = predictor
        self.cap_w = cap_w
        self.governor = governor
        self.pools: dict[Preference, list[Job]] = {
            Preference.CPU: list(categorized.cpu_preferred),
            Preference.GPU: list(categorized.gpu_preferred),
            Preference.NONE: list(categorized.non_preferred),
        }

    def empty(self) -> bool:
        return not any(self.pools.values())

    def _best_time(self, job: Job, kind: DeviceKind) -> float:
        try:
            return self.predictor.best_solo(job.uid, kind, self.cap_w)[1]
        except ValueError:
            return math.inf

    def _interference(self, job: Job, kind: DeviceKind, other: Job) -> float:
        if kind is DeviceKind.CPU:
            pair = (job.uid, other.uid)
        else:
            pair = (other.uid, job.uid)
        ranked = self.governor.min_pair_interference(*pair)
        return ranked[0] if ranked is not None else math.inf

    def _other_side_span(self, kind: DeviceKind, other_remaining_s: float) -> float:
        """Projected wall time the *other* processor still needs.

        Counts the other side's currently running remainder plus every job
        still in the pools, timed on the other device — the work that will
        flow there if ``kind`` stops pulling.
        """
        other_kind = kind.other
        span = other_remaining_s
        for pool in self.pools.values():
            for job in pool:
                span += self._best_time(job, other_kind)
        return span

    def pick(
        self,
        kind: DeviceKind,
        other: Job | None,
        other_remaining_s: float = 0.0,
    ) -> Job | None:
        """Draw the next job for ``kind`` under the scheduling rule.

        Jobs from ``kind``'s own preferred set are always taken.  A
        non-preferred or other-preferred job is only *stolen* when it would
        finish within the other processor's projected remaining span —
        otherwise the steal lengthens the makespan by construction (the job
        runs slower here than the wait for its preferred processor costs),
        so the processor is deliberately left idle, as Definition 2.1's
        schedules permit.
        """
        own_pref = _pool_priority(kind)[0]
        for pref in _pool_priority(kind):
            pool = self.pools[pref]
            if not pool:
                continue
            candidates = pool
            stealing = pref is not own_pref
            if stealing:
                if other is None and other_remaining_s <= 0.0:
                    # Both processors idle: the job must be issued now, so
                    # the only question is whether *this* device is its
                    # faster home (the other side's pick will catch it
                    # otherwise).
                    candidates = [
                        j
                        for j in pool
                        if self._best_time(j, kind)
                        <= self._best_time(j, kind.other)
                    ]
                else:
                    span = self._other_side_span(kind, other_remaining_s)
                    # Stealing candidate j relieves the other side of j's
                    # own time there, so compare against the span without j.
                    candidates = [
                        j
                        for j in pool
                        if self._best_time(j, kind)
                        <= span - self._best_time(j, kind.other)
                    ]
                if not candidates:
                    continue
            if stealing and pref is not Preference.NONE:
                # Stolen other-preferred jobs pay a migration penalty; take
                # the one *least relatively penalized* (smallest ratio of
                # its time here to its time on its preferred processor)
                # rather than the least-interfering one — the interference
                # of a 3x-slower placement is never worth it.
                job = min(
                    candidates,
                    key=lambda j: self._best_time(j, kind)
                    / max(self._best_time(j, kind.other), 1e-9),
                )
            elif other is None:
                # Nothing to pair against: take the longest job, which gives
                # later picks the most co-run surface to exploit (this is
                # also the paper's bootstrap rule on the GPU side).
                job = max(candidates, key=lambda j: self._best_time(j, kind))
            else:
                job = min(
                    candidates, key=lambda j: self._interference(j, kind, other)
                )
            pool.remove(job)
            return job
        return None


def greedy_schedule(
    predictor: CoRunPredictor,
    categorized: Categorized,
    cap_w: float,
    governor: ModelGovernor,
) -> tuple[list[Job], list[Job]]:
    """Run the greedy pairing loop; returns the (CPU, GPU) queue orders."""
    state = _GreedyState(predictor, categorized, cap_w, governor)
    cpu_order: list[Job] = []
    gpu_order: list[Job] = []

    def remaining_estimate(cur: tuple[Job, float] | None, kind: DeviceKind) -> float:
        """Rough wall time the side's current job still needs."""
        if cur is None:
            return 0.0
        return cur[1] * state._best_time(cur[0], kind)

    # Bootstrap: longest GPU-preferred job to the GPU first.
    cur_g_job = state.pick(DeviceKind.GPU, None)
    boot_remaining = (
        state._best_time(cur_g_job, DeviceKind.GPU) if cur_g_job else 0.0
    )
    cur_c_job = state.pick(DeviceKind.CPU, cur_g_job, boot_remaining)
    cur_g = (cur_g_job, 1.0) if cur_g_job else None
    cur_c = (cur_c_job, 1.0) if cur_c_job else None
    if cur_g_job:
        gpu_order.append(cur_g_job)
    if cur_c_job:
        cpu_order.append(cur_c_job)

    while cur_c is not None or cur_g is not None:
        setting = governor(
            cur_c[0] if cur_c else None, cur_g[0] if cur_g else None
        )
        if cur_c is not None and cur_g is not None:
            t_c, t_g = predictor.corun_times(cur_c[0].uid, cur_g[0].uid, setting)
        elif cur_c is not None:
            t_c = predictor.solo_time(cur_c[0].uid, DeviceKind.CPU, setting.cpu_ghz)
            t_g = None
        else:
            t_g = predictor.solo_time(cur_g[0].uid, DeviceKind.GPU, setting.gpu_ghz)
            t_c = None

        dts = []
        if cur_c is not None:
            dts.append(cur_c[1] * t_c)
        if cur_g is not None:
            dts.append(cur_g[1] * t_g)
        dt = min(dts)

        if cur_c is not None:
            rem = cur_c[1] - dt / t_c
            cur_c = None if rem <= _EPS else (cur_c[0], rem)
        if cur_g is not None:
            rem = cur_g[1] - dt / t_g
            cur_g = None if rem <= _EPS else (cur_g[0], rem)

        # Refill whichever processor went idle.
        if cur_c is None:
            nxt = state.pick(
                DeviceKind.CPU,
                cur_g[0] if cur_g else None,
                remaining_estimate(cur_g, DeviceKind.GPU),
            )
            if nxt is not None:
                cpu_order.append(nxt)
                cur_c = (nxt, 1.0)
        if cur_g is None:
            nxt = state.pick(
                DeviceKind.GPU,
                cur_c[0] if cur_c else None,
                remaining_estimate(cur_c, DeviceKind.CPU),
            )
            if nxt is not None:
                gpu_order.append(nxt)
                cur_g = (nxt, 1.0)

    assert state.empty(), "greedy loop ended with unscheduled jobs"
    return cpu_order, gpu_order
