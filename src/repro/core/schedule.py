"""Co-schedule representation and the scheduler-side (predicted) timeline.

A :class:`CoSchedule` is the object every scheduling algorithm produces: an
ordered CPU queue, an ordered GPU queue, and a *solo tail* of jobs that run
alone at the end (the heuristic's S_seq).  The ground-truth engine executes
it via :func:`repro.engine.sim.run`; the scheduler itself
evaluates candidates with :func:`predicted_makespan`, which replays the same
queue semantics using *predicted* degradations — the paper's runtime never
touches the machine while searching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job

_EPS = 1e-12


@dataclass(frozen=True)
class CoSchedule:
    """Two execution queues plus a run-alone tail (Definition 2.1 output)."""

    cpu_queue: tuple[Job, ...] = ()
    gpu_queue: tuple[Job, ...] = ()
    solo_tail: tuple[tuple[Job, DeviceKind], ...] = ()

    def __post_init__(self) -> None:
        uids = self.all_uids()
        if len(set(uids)) != len(uids):
            raise ValueError("a job may appear only once in a co-schedule")

    def all_uids(self) -> list[str]:
        """Every scheduled job uid, in queue order."""
        return (
            [j.uid for j in self.cpu_queue]
            + [j.uid for j in self.gpu_queue]
            + [j.uid for j, _ in self.solo_tail]
        )

    @property
    def n_jobs(self) -> int:
        return len(self.cpu_queue) + len(self.gpu_queue) + len(self.solo_tail)

    def with_queues(
        self, cpu_queue: Sequence[Job], gpu_queue: Sequence[Job]
    ) -> "CoSchedule":
        """Copy with replaced co-phase queues (used by the refinement moves)."""
        return replace(
            self, cpu_queue=tuple(cpu_queue), gpu_queue=tuple(gpu_queue)
        )

    def describe(self) -> str:
        """Human-readable one-line-per-processor rendering."""
        lines = [
            "CPU : " + " -> ".join(j.uid for j in self.cpu_queue),
            "GPU : " + " -> ".join(j.uid for j in self.gpu_queue),
        ]
        if self.solo_tail:
            lines.append(
                "SOLO: "
                + ", ".join(f"{j.uid}@{kind}" for j, kind in self.solo_tail)
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PredictedMetrics:
    """Model-predicted makespan, energy, and flow of one schedule replay."""

    makespan_s: float
    energy_j: float
    #: Sum of predicted per-job completion times (total flow, releases at
    #: zero).  ``nan`` when the metric source predates flow tracking.
    flow_s: float = float("nan")

    @property
    def edp_js(self) -> float:
        return self.energy_j * self.makespan_s

    def score(self, objective) -> float:
        """Objective scalar (duck-typed: an Objective or its string value)."""
        name = getattr(objective, "value", objective)
        if name == "makespan":
            return self.makespan_s
        if name == "energy":
            return self.energy_j
        if name == "edp":
            return self.edp_js
        if name == "flow_time":
            return self.flow_s
        if name == "makespan_energy":
            from repro.core.objectives import MAKESPAN_ENERGY_RHO

            return self.makespan_s + MAKESPAN_ENERGY_RHO * self.energy_j
        raise ValueError(f"unknown objective {objective!r}")


def predicted_makespan(schedule: CoSchedule, predictor, governor) -> float:
    """Makespan of ``schedule`` under the *predicted* performance model.

    Mean-field replay: whenever jobs A (CPU) and B (GPU) overlap, each
    progresses at ``1 / (l (1 + d))`` per second with ``d`` the predicted
    steady degradation at the governor's chosen setting; a job running with
    the other processor empty progresses at ``1 / l``.  This mirrors the
    Co-Run Theorem's steady-state accounting, including the partial-overlap
    correction of the Section IV-B side note (rates are re-evaluated when a
    co-runner finishes).

    ``predictor`` needs ``corun_times``/``solo_time``; ``governor`` maps a
    (cpu job, gpu job) pair to the frequency setting (see
    :mod:`repro.core.freqpolicy`).
    """
    return _replay(schedule, predictor, governor, track_energy=False)[0]


def predicted_metrics(schedule: CoSchedule, predictor, governor) -> PredictedMetrics:
    """Makespan *and* energy of ``schedule`` under the predicted model.

    The same mean-field replay as :func:`predicted_makespan` (the makespan
    it reports is bit-identical), additionally integrating the predicted
    chip power over each steady segment.  This is what non-makespan
    objectives minimize while searching — the model-side analogue of
    :attr:`repro.engine.sim.ExecutionResult.energy_j`.
    """
    t, energy, flow = _replay(schedule, predictor, governor, track_energy=True)
    return PredictedMetrics(makespan_s=t, energy_j=energy, flow_s=flow)


def _replay(
    schedule: CoSchedule, predictor, governor, *, track_energy: bool
) -> tuple[float, float, float]:
    from repro.core.feasibility import predicted_power

    cpu = list(schedule.cpu_queue)
    gpu = list(schedule.gpu_queue)

    # (job, remaining fraction) per side, or None when idle.
    cur_c: tuple[Job, float] | None = None
    cur_g: tuple[Job, float] | None = None
    t = 0.0
    energy = 0.0
    flow = 0.0

    while True:
        if cur_c is None and cpu:
            cur_c = (cpu.pop(0), 1.0)
        if cur_g is None and gpu:
            cur_g = (gpu.pop(0), 1.0)
        if cur_c is None and cur_g is None:
            break

        setting = governor(cur_c[0] if cur_c else None, cur_g[0] if cur_g else None)
        if cur_c is not None and cur_g is not None:
            t_c, t_g = predictor.corun_times(cur_c[0].uid, cur_g[0].uid, setting)
        elif cur_c is not None:
            t_c = predictor.solo_time(cur_c[0].uid, DeviceKind.CPU, setting.cpu_ghz)
            t_g = None
        else:
            t_g = predictor.solo_time(cur_g[0].uid, DeviceKind.GPU, setting.gpu_ghz)
            t_c = None

        # Wall time each running job still needs if conditions persist.
        dt_candidates = []
        if cur_c is not None:
            dt_candidates.append(cur_c[1] * t_c)
        if cur_g is not None:
            dt_candidates.append(cur_g[1] * t_g)
        dt = min(dt_candidates)
        if track_energy:
            energy += dt * predicted_power(
                predictor,
                cur_c[0].uid if cur_c else None,
                cur_g[0].uid if cur_g else None,
                setting,
            )

        done = 0
        if cur_c is not None:
            rem = cur_c[1] - dt / t_c
            if rem <= _EPS:
                cur_c, done = None, done + 1
            else:
                cur_c = (cur_c[0], rem)
        if cur_g is not None:
            rem = cur_g[1] - dt / t_g
            if rem <= _EPS:
                cur_g, done = None, done + 1
            else:
                cur_g = (cur_g[0], rem)
        t += dt
        flow += done * t

    for job, kind in schedule.solo_tail:
        setting = governor(
            job if kind is DeviceKind.CPU else None,
            job if kind is DeviceKind.GPU else None,
        )
        f = setting.cpu_ghz if kind is DeviceKind.CPU else setting.gpu_ghz
        solo_s = predictor.solo_time(job.uid, kind, f)
        t += solo_s
        flow += t
        if track_energy:
            energy += solo_s * predictor.solo_power_w(job.uid, kind, f)

    return t, energy, flow
