"""HCS / HCS+ facade: the complete heuristic co-scheduling algorithm.

Wires the three steps together (Sections IV-A.1/2) and optionally the post
refinement (IV-A.3):

1. :func:`repro.core.partition.partition_jobs` — S_co vs S_seq via the
   Co-Run Theorem over cap-feasible settings;
2. :func:`repro.core.categorize.categorize_jobs` — preference sets with
   threshold D;
3. :func:`repro.core.greedy.greedy_schedule` — greedy minimum-interference
   pairing; S_seq jobs are appended as a solo tail, each on its best
   cap-feasible processor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.categorize import DEFAULT_THRESHOLD, Categorized, categorize_jobs
from repro.core.context import SchedulingContext
from repro.core.feasibility import context_cap
from repro.core.greedy import greedy_schedule
from repro.core.objectives import Objective
from repro.core.partition import Partition, partition_jobs
from repro.core.refine import refine_schedule
from repro.core.schedule import CoSchedule
from repro.model.predictor import CoRunPredictor
from repro.perf.evaluator import ScheduleEvaluator


@dataclass(frozen=True)
class HcsResult:
    """The heuristic's output plus its intermediate artifacts."""

    schedule: CoSchedule
    partition: Partition
    categorized: Categorized
    governor: object
    predicted_makespan_s: float
    scheduling_time_s: float


def _best_solo_kind(
    predictor: CoRunPredictor, job: Job, cap_w: float
) -> DeviceKind:
    """The processor delivering the job's best cap-feasible standalone time."""
    times = {}
    for kind in DeviceKind:
        try:
            times[kind] = predictor.best_solo(job.uid, kind, cap_w)[1]
        except InfeasibleCapError:
            continue
    if not times:
        raise InfeasibleCapError(
            f"{job.uid} cannot run under the {cap_w} W cap on either device",
            cap_w=cap_w,
            jobs=(job.uid,),
        )
    return min(times, key=lambda kind: times[kind])


def hcs_schedule(
    predictor: CoRunPredictor | SchedulingContext,
    jobs: Sequence[Job] | None = None,
    cap_w: float | None = None,
    *,
    refine: bool = False,
    threshold: float = DEFAULT_THRESHOLD,
    seed: int | np.random.Generator | None = None,
    evaluator: ScheduleEvaluator | None = None,
    objective: Objective | str | None = None,
    vectorized: bool | None = None,
) -> HcsResult:
    """Compute an HCS (or, with ``refine=True``, HCS+) co-schedule.

    The first argument may be a
    :class:`~repro.core.context.SchedulingContext`, which supplies jobs,
    cap, governor, evaluator, objective, and seed in one bundle (the legacy
    ``(predictor, jobs, cap_w)`` shape is coerced into one).  Under an
    energy/EDP context the greedy pairing and the refinement passes rank
    candidates by the context governor's objective cost.  ``evaluator``
    (optional) shares a memoized evaluator with the refinement passes and
    the final predicted-makespan report.  ``vectorized`` is forwarded to
    :func:`~repro.core.refine.refine_schedule`: on a tensor-backed context
    the refinement runs as vectorized full-neighborhood descent by
    default; ``False`` pins the scalar sampling passes.
    """
    t0 = time.perf_counter()
    ctx = SchedulingContext.coerce(
        predictor,
        jobs,
        cap_w,
        objective=objective,
        evaluator=evaluator,
        seed=seed,
    )
    predictor, governor, evaluator = ctx.predictor, ctx.governor, ctx.evaluator

    cap = context_cap(ctx)
    part = partition_jobs(predictor, ctx.jobs, cap)
    cat = categorize_jobs(predictor, part.co, cap, threshold=threshold)
    cpu_order, gpu_order = greedy_schedule(predictor, cat, cap, governor)
    solo = tuple(
        (job, _best_solo_kind(predictor, job, cap)) for job in part.seq
    )
    schedule = CoSchedule(
        cpu_queue=tuple(cpu_order), gpu_queue=tuple(gpu_order), solo_tail=solo
    )
    if refine:
        schedule = refine_schedule(schedule, ctx, vectorized=vectorized)
    elapsed = time.perf_counter() - t0

    return HcsResult(
        schedule=schedule,
        partition=part,
        categorized=cat,
        governor=governor,
        predicted_makespan_s=ctx.predicted_makespan(schedule),
        scheduling_time_s=elapsed,
    )
