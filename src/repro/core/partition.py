"""Step 1 of the heuristic: partition jobs into S_co and S_seq.

A job joins S_co if *some* co-runner, placement, and cap-feasible frequency
setting exists for which the Co-Run Theorem predicts the co-run beats
sequential execution; otherwise it joins S_seq and will run alone on its
best processor (Section IV-A.1, with the power-cap change of IV-A.2: the
theorem is evaluated across all settings that satisfy the cap).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.feasibility import pair_settings_under_cap
from repro.core.theorem import corun_beneficial_theorem
from repro.model.predictor import CoRunPredictor


@dataclass(frozen=True)
class Partition:
    """The two disjoint job sets produced by Step 1."""

    co: tuple[Job, ...]
    seq: tuple[Job, ...]


def _pair_ever_beneficial(
    predictor: CoRunPredictor,
    cpu_job: Job,
    gpu_job: Job,
    cap_w: float,
) -> bool:
    """Does any cap-feasible setting make this placement's co-run beneficial?"""
    for setting in pair_settings_under_cap(
        predictor, cpu_job.uid, gpu_job.uid, cap_w
    ):
        l_c = predictor.solo_time(cpu_job.uid, DeviceKind.CPU, setting.cpu_ghz)
        l_g = predictor.solo_time(gpu_job.uid, DeviceKind.GPU, setting.gpu_ghz)
        d_c, d_g = predictor.degradations(cpu_job.uid, gpu_job.uid, setting)
        if corun_beneficial_theorem(l_c, d_c, l_g, d_g):
            return True
    return False


def partition_jobs(
    predictor: CoRunPredictor, jobs: Sequence[Job], cap_w: float
) -> Partition:
    """Split ``jobs`` into co-run candidates and run-alone jobs."""
    co: list[Job] = []
    seq: list[Job] = []
    for job in jobs:
        beneficial = False
        for other in jobs:
            if other.uid == job.uid:
                continue
            if _pair_ever_beneficial(predictor, job, other, cap_w) or (
                _pair_ever_beneficial(predictor, other, job, cap_w)
            ):
                beneficial = True
                break
        (co if beneficial else seq).append(job)
    return Partition(co=tuple(co), seq=tuple(seq))
