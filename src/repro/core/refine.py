"""HCS+ post local refinement (Section IV-A.3).

Three low-cost passes over the heuristic's output, each keeping a candidate
swap only when the *predicted* makespan improves:

1. adjacent swaps along each processor's queue (one linear pass per queue);
2. random swaps of two jobs within one queue;
3. random swaps of two jobs across the two queues.

All passes are linear in the number of jobs or in the number of random
samples, preserving the paper's "almost no time to run" property
(Section VI-D).  Candidate makespans are evaluated through a memoized
:class:`~repro.perf.evaluator.ScheduleEvaluator`: the random passes revisit
candidates, and a caller-supplied evaluator shares its cache with whatever
search produced the input schedule.

Driven through a non-makespan :class:`~repro.core.context.SchedulingContext`
the identical passes minimize the context's objective (energy or EDP)
instead — the evaluator is the only place a score is ever computed.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import SchedulingContext
from repro.core.schedule import CoSchedule
from repro.perf.evaluator import ScheduleEvaluator
from repro.util.rng import default_rng

#: Random-sample count per stochastic pass, as a multiple of the job count.
SAMPLES_PER_JOB = 2

#: Minimum relative predicted improvement for accepting a swap.  The model
#: carries ~15% error (Figure 7); chasing sub-percent predicted gains just
#: reshuffles the schedule inside the noise floor.  The deterministic
#: adjacent pass demands stronger evidence than the random passes: adjacent
#: swaps perturb the pairing pattern only locally, so their small predicted
#: gains are disproportionately model noise.
ADJACENT_MIN_GAIN = 0.01
RANDOM_MIN_GAIN = 0.002


def _adjacent_pass(
    schedule: CoSchedule, evaluate: ScheduleEvaluator, best_makespan: float
) -> tuple[CoSchedule, float]:
    for side in ("cpu", "gpu"):
        queue = list(schedule.cpu_queue if side == "cpu" else schedule.gpu_queue)
        for i in range(len(queue) - 1):
            queue[i], queue[i + 1] = queue[i + 1], queue[i]
            candidate = (
                schedule.with_queues(queue, schedule.gpu_queue)
                if side == "cpu"
                else schedule.with_queues(schedule.cpu_queue, queue)
            )
            m = evaluate(candidate)
            if m < best_makespan * (1.0 - ADJACENT_MIN_GAIN):
                schedule, best_makespan = candidate, m
            else:
                queue[i], queue[i + 1] = queue[i + 1], queue[i]
    return schedule, best_makespan


def _random_intra_pass(
    schedule: CoSchedule,
    evaluate: ScheduleEvaluator,
    best_makespan: float,
    rng: np.random.Generator,
    n_samples: int,
) -> tuple[CoSchedule, float]:
    for _ in range(n_samples):
        sides = [
            s
            for s in ("cpu", "gpu")
            if len(schedule.cpu_queue if s == "cpu" else schedule.gpu_queue) >= 2
        ]
        if not sides:
            break
        side = sides[int(rng.integers(len(sides)))]
        queue = list(schedule.cpu_queue if side == "cpu" else schedule.gpu_queue)
        i, j = rng.choice(len(queue), size=2, replace=False)
        queue[i], queue[j] = queue[j], queue[i]
        candidate = (
            schedule.with_queues(queue, schedule.gpu_queue)
            if side == "cpu"
            else schedule.with_queues(schedule.cpu_queue, queue)
        )
        m = evaluate(candidate)
        if m < best_makespan * (1.0 - RANDOM_MIN_GAIN):
            schedule, best_makespan = candidate, m
    return schedule, best_makespan


def _random_cross_pass(
    schedule: CoSchedule,
    evaluate: ScheduleEvaluator,
    best_makespan: float,
    rng: np.random.Generator,
    n_samples: int,
) -> tuple[CoSchedule, float]:
    for _ in range(n_samples):
        if not schedule.cpu_queue or not schedule.gpu_queue:
            break
        cpu = list(schedule.cpu_queue)
        gpu = list(schedule.gpu_queue)
        i = int(rng.integers(len(cpu)))
        j = int(rng.integers(len(gpu)))
        cpu[i], gpu[j] = gpu[j], cpu[i]
        candidate = schedule.with_queues(cpu, gpu)
        m = evaluate(candidate)
        if m < best_makespan * (1.0 - RANDOM_MIN_GAIN):
            schedule, best_makespan = candidate, m
    return schedule, best_makespan


def _refine_vectorized(
    schedule: CoSchedule, evaluate: ScheduleEvaluator, best: float
) -> CoSchedule | None:
    """Full-neighborhood steepest descent over the tensor tables.

    Returns the refined schedule, or ``None`` when this evaluator cannot
    batch-score the schedule (scalar backend, missing tables, uncovered
    uids) and the scalar sampling passes should run instead.  The
    vectorized neighborhood is a superset of what the scalar passes
    sample — every adjacent, intra-queue, and cross-queue swap — scored
    in one lockstep replay per round; infeasible candidates come back as
    ``np.inf`` and are skipped rather than raising, since a swap that
    breaks the cap is simply not an improvement.
    """
    from repro.perf.tensor import BatchScheduleEvaluator

    if not isinstance(evaluate, BatchScheduleEvaluator) or evaluate.tables is None:
        return None
    index = evaluate.tensor.index
    if any(uid not in index for uid in schedule.all_uids()):
        return None
    from repro.perf.population import refine_queues

    tail = tuple((index[j.uid], kind) for j, kind in schedule.solo_tail)

    def score_queues(Qc, len_c, Qg, len_g):
        scores, _, _, _, _ = evaluate.score_population(
            Qc, len_c, Qg, len_g, solo_tail=tail
        )
        return scores

    cpu = np.array([index[j.uid] for j in schedule.cpu_queue], dtype=np.int64)
    gpu = np.array([index[j.uid] for j in schedule.gpu_queue], dtype=np.int64)
    cpu, gpu, _ = refine_queues(
        score_queues,
        cpu,
        gpu,
        best,
        adjacent_min_gain=ADJACENT_MIN_GAIN,
        random_min_gain=RANDOM_MIN_GAIN,
    )
    job_of = {
        index[j.uid]: j
        for j in (*schedule.cpu_queue, *schedule.gpu_queue)
    }
    refined = schedule.with_queues(
        tuple(job_of[int(i)] for i in cpu),
        tuple(job_of[int(i)] for i in gpu),
    )
    # Prime the memoized per-schedule score (bitwise equal to the lane's).
    evaluate(refined)
    return refined


def refine_schedule(
    schedule: CoSchedule,
    predictor,
    governor=None,
    *,
    seed: int | np.random.Generator | None = None,
    n_samples: int | None = None,
    evaluator: ScheduleEvaluator | None = None,
    vectorized: bool | None = None,
) -> CoSchedule:
    """Apply the three refinement passes; returns the improved schedule.

    ``predictor`` may be a :class:`~repro.core.context.SchedulingContext`,
    in which case the context's evaluator (and seed, unless ``seed`` is
    given) drive the passes — the swaps then minimize the context's
    *objective*, not necessarily the makespan.  With the legacy
    ``(predictor, governor)`` arguments, ``evaluator`` (optional) supplies
    a shared memoized evaluator; when omitted a private one is created,
    which still de-duplicates re-visited candidates within this call.

    On a tensor-backed context the passes are replaced by vectorized
    full-neighborhood steepest descent (see
    :mod:`repro.perf.population`): deterministic, samples nothing, and
    never accepts a smaller gain than the scalar passes would.
    ``vectorized=False`` pins the scalar sampling passes (the equivalence
    referee); ``True`` requires the vectorized path.
    """
    ctx = _coerce_context(schedule, predictor, governor, evaluator)
    if ctx is not None:
        evaluate = evaluator if evaluator is not None else ctx.evaluator
        rng = default_rng(ctx.seed if seed is None else seed)
    else:
        # No equivalent context exists (empty schedule, or a governor that
        # carries no cap to check against) — refine with a private
        # evaluator; there is nothing the sanitizer could verify.
        evaluate = (
            evaluator
            if evaluator is not None
            else ScheduleEvaluator(predictor, governor)
        )
        rng = default_rng(seed)
    if n_samples is None:
        n_samples = max(1, SAMPLES_PER_JOB * schedule.n_jobs)
    best = evaluate(schedule)
    refined = (
        _refine_vectorized(schedule, evaluate, best)
        if vectorized is not False
        else None
    )
    if refined is not None:
        schedule = refined
    else:
        if vectorized is True:
            raise ValueError(
                "vectorized refinement requires a tensor-backed context "
                "(BatchScheduleEvaluator with pair tables covering every "
                "job)"
            )
        schedule, best = _adjacent_pass(schedule, evaluate, best)
        schedule, best = _random_intra_pass(
            schedule, evaluate, best, rng, n_samples
        )
        schedule, best = _random_cross_pass(
            schedule, evaluate, best, rng, n_samples
        )
    if ctx is not None:
        from repro.analysis.invariants import maybe_check_schedule

        maybe_check_schedule(ctx, schedule, where="refine")
    return schedule


def _coerce_context(
    schedule: CoSchedule, predictor, governor, evaluator
) -> SchedulingContext | None:
    """Adapt ``refine_schedule``'s first arguments to one context.

    A :class:`SchedulingContext` passes through unchanged; the legacy
    ``(predictor, governor)`` shape is coerced via
    :meth:`SchedulingContext.coerce` with the schedule's own jobs and the
    governor's cap.  Returns ``None`` when no equivalent context exists —
    an empty schedule, or a governor without a ``cap_w`` (nothing to
    cap-check).
    """
    if isinstance(predictor, SchedulingContext):
        if governor is not None:
            raise TypeError(
                "governor must be omitted when a SchedulingContext is given"
            )
        return predictor
    cap_w = getattr(governor, "cap_w", None)
    if cap_w is None or schedule.n_jobs == 0:
        return None
    jobs = (
        *schedule.cpu_queue,
        *schedule.gpu_queue,
        *(job for job, _ in schedule.solo_tail),
    )
    return SchedulingContext.coerce(
        predictor,
        jobs,
        cap_w,
        objective=evaluator.objective if evaluator is not None else None,
        governor=governor,
        evaluator=evaluator,
    )
