"""Online scheduling policies for open (arrival-driven) systems.

Two policies for arrival-driven :func:`repro.engine.sim.run`
(``Scenario.from_arrivals``):

* :class:`FifoOnlinePolicy` — arrival order, placed on whichever processor
  asks (the naive work-conserving server);
* :class:`HcsOnlinePolicy` — the paper's greedy rule applied online: among
  *arrived* jobs, fill a processor from its preferred candidates first,
  choose the least predicted interference with the current co-runner, and
  decline a placement on the wrong processor when the job's relative
  slowdown there is too high (the batch scheduler's steal guard, adapted
  to the open setting where future arrivals are unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.categorize import DEFAULT_THRESHOLD
from repro.core.freqpolicy import ModelGovernor
from repro.model.predictor import CoRunPredictor


@dataclass
class FifoOnlinePolicy:
    """First-come first-served, any processor that asks gets the head job."""

    def __call__(
        self, kind: DeviceKind, available: list[Job], other: Job | None, now: float
    ) -> Job | None:
        return available[0] if available else None


@dataclass
class HcsOnlinePolicy:
    """The heuristic's Step 2+3 rules applied to the arrived-job pool.

    ``predictor`` may be a
    :class:`~repro.core.context.SchedulingContext`, which supplies the
    predictor, cap, and governor (so an energy context ranks co-runner
    candidates by objective cost); ``cap_w`` is then optional.

    ``steal_ratio_limit`` bounds how much slower than its preferred
    processor a job may run when placed on the other one; with unknown
    future arrivals there is no horizon to compare against, so a fixed
    ratio plays the steal guard's role (2.0 ~ "at most twice as slow").
    """

    predictor: CoRunPredictor
    cap_w: float | None = None
    threshold: float = DEFAULT_THRESHOLD
    steal_ratio_limit: float = 2.0
    _governor: object = field(init=False)

    def __post_init__(self) -> None:
        from repro.core.context import SchedulingContext

        if isinstance(self.predictor, SchedulingContext):
            from repro.core.feasibility import context_cap

            ctx = self.predictor
            self.predictor = ctx.predictor
            if self.cap_w is None:
                self.cap_w = context_cap(ctx)
            self._governor = ctx.governor
        else:
            if self.cap_w is None:
                raise TypeError(
                    "cap_w is required without a SchedulingContext"
                )
            self._governor = ModelGovernor(self.predictor, self.cap_w)

    def _best_time(self, job: Job, kind: DeviceKind) -> float:
        try:
            return self.predictor.best_solo(job.uid, kind, self.cap_w)[1]
        except ValueError:
            return float("inf")

    def _prefers(self, job: Job, kind: DeviceKind) -> bool:
        own = self._best_time(job, kind)
        other = self._best_time(job, kind.other)
        if own == float("inf"):
            return False
        if other == float("inf"):
            return True
        diff = abs(own - other) / min(own, other)
        return diff <= self.threshold or own < other

    def _interference(self, job: Job, kind: DeviceKind, other: Job) -> float:
        pair = (
            (job.uid, other.uid) if kind is DeviceKind.CPU else (other.uid, job.uid)
        )
        ranked = self._governor.min_pair_interference(*pair)
        return ranked[0] if ranked is not None else float("inf")

    def __call__(
        self, kind: DeviceKind, available: list[Job], other: Job | None, now: float
    ) -> Job | None:
        if not available:
            return None
        preferred = [j for j in available if self._prefers(j, kind)]
        if preferred:
            candidates = preferred
        else:
            # Only wrong-processor jobs are available: take one only if the
            # relative penalty is acceptable; otherwise stay idle and let
            # the right processor (or a better arrival) pick it up.
            candidates = [
                j
                for j in available
                if self._best_time(j, kind)
                <= self.steal_ratio_limit * self._best_time(j, kind.other)
            ]
            if not candidates:
                # Declining is safe even with both processors idle: an empty
                # preferred set here means every available job is strictly
                # faster on the other processor, whose own pick (asked in
                # the same scheduling event) will take it.
                return None
        if other is None:
            return max(candidates, key=lambda j: self._best_time(j, kind))
        return min(candidates, key=lambda j: self._interference(j, kind, other))
