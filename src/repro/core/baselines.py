"""The comparison schedulers of Section VI-A: Random and Default.

*Random* mimics an operator with no model: whenever a processor goes idle it
grabs a random remaining job, or occasionally leaves the processor idle (the
paper allows this "as some jobs prefer to be executed alone").

*Default* mimics handing the batch to the OS: programs are ranked by their
CPU/GPU standalone-time ratio at the highest frequency, split into a GPU
partition and a CPU partition so the longer partition's total time is
minimized, and the CPU partition is launched all at once under the Linux
scheduler (time-shared — see :mod:`repro.engine.multiprog`).

Neither baseline controls power by itself; both rely on a GPU-biased or
CPU-biased governor (:mod:`repro.core.freqpolicy`) to satisfy the cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.schedule import CoSchedule
from repro.model.profiler import ProfileTable
from repro.util.rng import default_rng

#: Probability that Random leaves a job to run alone at the tail.
DEFAULT_SOLO_PROB = 0.1


def random_schedule(
    jobs,
    *,
    seed: int | np.random.Generator | None = None,
    solo_prob: float = DEFAULT_SOLO_PROB,
) -> CoSchedule:
    """One sample of the Random baseline.

    ``jobs`` may be a job sequence or a
    :class:`~repro.core.context.SchedulingContext` (whose jobs and seed are
    used; an explicit ``seed`` wins).  Jobs are visited in random order;
    each lands on a uniformly random processor queue, except that with
    probability ``solo_prob`` it is set aside to run alone (on a random
    processor) after the queues drain.
    """
    from repro.core.context import SchedulingContext

    if isinstance(jobs, SchedulingContext):
        if seed is None:
            seed = jobs.seed
        jobs = jobs.jobs
    if not 0.0 <= solo_prob <= 1.0:
        raise ValueError("solo_prob must be a probability")
    rng = default_rng(seed)
    order = list(jobs)
    rng.shuffle(order)
    cpu: list[Job] = []
    gpu: list[Job] = []
    solo: list[tuple[Job, DeviceKind]] = []
    for job in order:
        if rng.random() < solo_prob:
            kind = DeviceKind.CPU if rng.random() < 0.5 else DeviceKind.GPU
            solo.append((job, kind))
        elif rng.random() < 0.5:
            cpu.append(job)
        else:
            gpu.append(job)
    return CoSchedule(
        cpu_queue=tuple(cpu), gpu_queue=tuple(gpu), solo_tail=tuple(solo)
    )


@dataclass(frozen=True)
class DefaultPartition:
    """The Default baseline's placement decision."""

    gpu_partition: tuple[Job, ...]  # ranked most-GPU-preferring first
    cpu_partition: tuple[Job, ...]


def default_partition(
    table: ProfileTable, jobs: Sequence[Job] | None = None
) -> DefaultPartition:
    """Rank-and-split placement (Section VI-A, "Default").

    ``table`` may be a :class:`~repro.core.context.SchedulingContext`
    (whose predictor's profile table and jobs are used).  Ranking key:
    standalone CPU time over GPU time at the highest frequency (higher
    ratio = stronger GPU preference).  The split point minimizes the larger
    of the two partitions' summed standalone times — the paper's
    "partitioning minimizes the sum of execution times of the longer
    partition".
    """
    from repro.core.context import SchedulingContext

    if isinstance(table, SchedulingContext):
        if jobs is None:
            jobs = table.jobs
        table = table.predictor.table
    elif jobs is None:
        raise TypeError("jobs are required without a SchedulingContext")
    proc = table.processor
    fc, fg = proc.cpu.domain.fmax, proc.gpu.domain.fmax

    def ratio(job: Job) -> float:
        return table.time_s(job.uid, DeviceKind.CPU, fc) / table.time_s(
            job.uid, DeviceKind.GPU, fg
        )

    ranked = sorted(jobs, key=ratio, reverse=True)
    gpu_times = [table.time_s(j.uid, DeviceKind.GPU, fg) for j in ranked]
    cpu_times = [table.time_s(j.uid, DeviceKind.CPU, fc) for j in ranked]

    best_k, best_span = 0, float("inf")
    for k in range(len(ranked) + 1):
        span = max(sum(gpu_times[:k]), sum(cpu_times[k:]))
        if span < best_span:
            best_k, best_span = k, span
    return DefaultPartition(
        gpu_partition=tuple(ranked[:best_k]),
        cpu_partition=tuple(ranked[best_k:]),
    )


def default_schedule(table: ProfileTable, jobs: Sequence[Job]) -> DefaultPartition:
    """Alias of :func:`default_partition` (the Default baseline has no
    further ordering decisions: the GPU partition runs in rank order and the
    CPU partition is launched simultaneously)."""
    return default_partition(table, jobs)


class RandomOnlineSource:
    """Online Random policy (the paper's actual baseline semantics).

    Whenever a processor goes idle it receives a uniformly random remaining
    job — or, with probability ``idle_prob`` (and only while the other
    processor is busy), it is left idle until the next scheduling event.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        *,
        seed: int | np.random.Generator | None = None,
        idle_prob: float = DEFAULT_SOLO_PROB,
    ) -> None:
        if not 0.0 <= idle_prob <= 1.0:
            raise ValueError("idle_prob must be a probability")
        self._pool = list(jobs)
        self._rng = default_rng(seed)
        self.idle_prob = idle_prob

    def remaining(self) -> int:
        return len(self._pool)

    def next_job(self, kind, other_job, other_busy, now_s):
        if not self._pool:
            return None
        if other_busy and self._rng.random() < self.idle_prob:
            return None
        idx = int(self._rng.integers(len(self._pool)))
        return self._pool.pop(idx)
