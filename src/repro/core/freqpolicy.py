"""Power-cap frequency policies (governors).

A governor answers: *given the jobs currently running, what frequency pair
should the chip use?*  Three policies appear in the paper:

* **GPU-biased** (Section VI-A): keep the GPU as fast as the cap allows,
  sacrificing CPU frequency first — the default used with the Random and
  Default baselines.
* **CPU-biased**: the mirror image.
* **HCS's model-driven choice** (Section IV-A.2): traverse every cap-
  feasible setting and pick the best-performing one for the running pair.

All three consult only the *predicted* power model — exactly the paper's
setup, where the runtime cannot measure a co-run before launching it.  The
small prediction error is why measured power occasionally overshoots the cap
(Figure 9).  Cap-feasibility arithmetic lives in
:mod:`repro.core.feasibility`, shared with the energy-aware governor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting
from repro.workload.program import Job
from repro.core.feasibility import (
    first_setting_under_cap,
    pair_settings_under_cap,
    require_pair_settings,
)
from repro.model.predictor import CoRunPredictor


class Bias(enum.Enum):
    """Which device keeps its frequency under power pressure."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass
class BiasedGovernor:
    """GPU-biased or CPU-biased cap enforcement.

    Maximizes the favoured device's frequency, then the other's, subject to
    the predicted power staying at or below the cap.  Equivalent to the
    paper's iterative lower/raise description, but solved directly.

    Raises :class:`~repro.errors.InfeasibleCapError` when even the lowest
    levels exceed the cap; the default calibration's caps (15/16 W) always
    admit the floor setting.
    """

    predictor: CoRunPredictor
    cap_w: float
    bias: Bias = Bias.GPU
    _cache: dict = field(default_factory=dict)

    def __call__(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        key = (
            cpu_job.uid if cpu_job else None,
            gpu_job.uid if gpu_job else None,
        )
        if key in self._cache:
            return self._cache[key]
        proc = self.predictor.processor
        cpu_levels = list(proc.cpu.domain.levels)
        gpu_levels = list(proc.gpu.domain.levels)

        if self.bias is Bias.GPU:
            outer = [FrequencySetting(fc, fg) for fg in reversed(gpu_levels)
                     for fc in reversed(cpu_levels)]
        else:
            outer = [FrequencySetting(fc, fg) for fc in reversed(cpu_levels)
                     for fg in reversed(gpu_levels)]
        setting = first_setting_under_cap(
            self.predictor, key[0], key[1], self.cap_w, outer
        )
        self._cache[key] = setting
        return setting


@dataclass
class ModelGovernor:
    """HCS's per-pair frequency choice: best predicted performance under the cap.

    For a co-running pair, picks the cap-feasible setting minimizing the
    *sum* of the two predicted co-run times — the pair's aggregate
    throughput.  (Minimizing the pair makespan instead is a trap: when one
    side dominates, every frequency of the other side ties on makespan, and
    the tie would be broken arbitrarily — possibly parking the faster
    device at its floor.)  For a solo job, the cap-feasible level minimizing
    its standalone time, with the idle device parked at its lowest level.
    """

    predictor: CoRunPredictor
    cap_w: float
    _cache: dict = field(default_factory=dict)

    def __call__(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        key = (
            cpu_job.uid if cpu_job else None,
            gpu_job.uid if gpu_job else None,
        )
        if key in self._cache:
            return self._cache[key]
        setting = self._choose(cpu_job, gpu_job)
        self._cache[key] = setting
        return setting

    def _choose(self, cpu_job: Job | None, gpu_job: Job | None) -> FrequencySetting:
        proc = self.predictor.processor
        if cpu_job is not None and gpu_job is not None:
            feasible = require_pair_settings(
                self.predictor, cpu_job.uid, gpu_job.uid, self.cap_w
            )
            return min(
                feasible,
                key=lambda s: sum(
                    self.predictor.corun_times(cpu_job.uid, gpu_job.uid, s)
                ),
            )
        if cpu_job is not None:
            f, _ = self.predictor.best_solo(cpu_job.uid, DeviceKind.CPU, self.cap_w)
            return FrequencySetting(f, proc.gpu.domain.fmin)
        if gpu_job is not None:
            f, _ = self.predictor.best_solo(gpu_job.uid, DeviceKind.GPU, self.cap_w)
            return FrequencySetting(proc.cpu.domain.fmin, f)
        raise ValueError("governor consulted with no running job")

    def min_pair_interference(
        self, cpu_uid: str, gpu_uid: str
    ) -> tuple[float, FrequencySetting] | None:
        """Minimal predicted degradation sum over cap-feasible settings.

        This is the ranking quantity of the heuristic's Step 3 ("traverses
        all frequency settings allowed by the power cap to compute the
        minimal degradation").  Returns ``None`` when no setting fits the
        cap.
        """
        feasible = pair_settings_under_cap(
            self.predictor, cpu_uid, gpu_uid, self.cap_w
        )
        if not feasible:
            return None
        best_s = min(
            feasible,
            key=lambda s: sum(self.predictor.degradations(cpu_uid, gpu_uid, s)),
        )
        return sum(self.predictor.degradations(cpu_uid, gpu_uid, best_s)), best_s
