"""The Co-Run Theorem and co-run length arithmetic (Section IV-A / IV-B).

**Co-Run Theorem (paper).**  For jobs W1 and W2 with standalone lengths l1,
l2 and co-run lengths ``l1 (1 + d1)``, ``l2 (1 + d2)``, ordered so that
``l1 (1 + d1) >= l2 (1 + d2)``: the co-run yields higher throughput than
running the jobs sequentially *iff* ``l1 * d1 < l2``.

The theorem treats the longer job as degraded for its whole duration — the
steady-state view appropriate when the shorter slot is continuously refilled
by a scheduler.  For an isolated pair, the shorter job stops interfering
when it finishes; :func:`corun_lengths` implements that exact partial-overlap
accounting (the paper's Section IV-B side note; the formula printed there
contains a typo — ``l*d`` where co-run lengths ``l*(1+d)`` are meant — and
this module implements the corrected progress-based version).
:func:`corun_beneficial_exact` compares makespans under the exact
accounting; both predicates are exposed because the heuristic algorithm uses
the theorem form while the lower bound and tests use the exact form.
"""

from __future__ import annotations

from repro.util.validation import check_nonnegative, check_positive


def _validate(l1: float, d1: float, l2: float, d2: float) -> None:
    check_positive("l1", l1)
    check_positive("l2", l2)
    check_nonnegative("d1", d1)
    check_nonnegative("d2", d2)


def corun_lengths(l1: float, d1: float, l2: float, d2: float) -> tuple[float, float]:
    """Exact completion times of two jobs co-started at time zero.

    ``l_i`` are standalone lengths; ``d_i`` the fractional degradations each
    suffers while the other is running.  The job with the shorter degraded
    length finishes first (at its fully-degraded time); the survivor's
    remaining work then proceeds at standalone speed:

    If ``l2 (1 + d2) <= l1 (1 + d1)`` the finish times are::

        t2 = l2 (1 + d2)
        t1 = t2 + l1 (1 - t2 / (l1 (1 + d1))) = l1 + t2 * d1 / (1 + d1)

    and symmetrically otherwise.
    """
    _validate(l1, d1, l2, d2)
    t1_full = l1 * (1.0 + d1)
    t2_full = l2 * (1.0 + d2)
    if t2_full <= t1_full:
        t2 = t2_full
        t1 = l1 + t2 * d1 / (1.0 + d1)
        return t1, t2
    t1 = t1_full
    t2 = l2 + t1 * d2 / (1.0 + d2)
    return t1, t2


def corun_makespan(l1: float, d1: float, l2: float, d2: float) -> float:
    """Exact makespan of co-starting the pair (max of the two finish times)."""
    t1, t2 = corun_lengths(l1, d1, l2, d2)
    return max(t1, t2)


def corun_beneficial_theorem(l1: float, d1: float, l2: float, d2: float) -> bool:
    """The paper's Co-Run Theorem predicate.

    Orders the two jobs by degraded length internally, then applies
    ``l_long * d_long < l_short``.  This is the steady-state criterion the
    heuristic's Step 1 uses to decide whether a job can ever benefit from
    co-running.
    """
    _validate(l1, d1, l2, d2)
    if l1 * (1.0 + d1) >= l2 * (1.0 + d2):
        l_long, d_long, l_short = l1, d1, l2
    else:
        l_long, d_long, l_short = l2, d2, l1
    return l_long * d_long < l_short


def corun_beneficial_exact(l1: float, d1: float, l2: float, d2: float) -> bool:
    """Whether co-starting the pair beats running it sequentially, exactly.

    Uses the partial-overlap makespan of :func:`corun_makespan` against the
    sequential makespan ``l1 + l2``.  Because interference stops when the
    shorter job finishes, this predicate is *more permissive* than the
    theorem form: any pair with finite degradations has co-run makespan
    ``l_long + t_short * d_long / (1 + d_long) < l_long + l_short`` whenever
    ``t_short * d_long / (1 + d_long) < l_short``, which holds strictly
    unless degradations are extreme.
    """
    return corun_makespan(l1, d1, l2, d2) < l1 + l2
