"""Lower bound on the optimal makespan (Section IV-B).

The paper's formula::

    T_low = 1/2 * sum_i l'_i

    l'_{i,p} = min( min_{j,f,g}  l_{i,p,f} * (1 + d_{i,p,f}^{j,g}),
                    2 * min_{f'} l_{i,p,f'} )
    l'_i    = min_p l'_{i,p}

with every minimum restricted to cap-feasible frequency settings.  The first
branch is the job's best possible co-run time (best processor, best
co-runner, best setting); the second is twice its best standalone time —
by the Co-Run Theorem, a job whose cheapest co-run costs more than twice its
standalone time is better off running alone, during which it occupies the
machine exclusively, so it contributes its full standalone time *to both
processors' worth of capacity* (hence the factor 2 against the 1/2 outside).

The bound is deliberately simple, "not sophisticatedly computed to be the
tightest" (paper); tests verify ``T_low <= measured optimal makespan`` on
brute-forceable instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.hardware.device import DeviceKind
from repro.workload.program import Job
from repro.core.feasibility import pair_settings_under_cap
from repro.model.predictor import CoRunPredictor


@dataclass(frozen=True)
class LowerBoundDetail:
    """Per-job contribution to the bound."""

    job: str
    best_corun_s: float      # min co-run time across processors/partners/settings
    best_solo_s: float       # min standalone time across processors/settings
    contribution_s: float    # l'_i


def lower_bound(
    predictor: CoRunPredictor,
    jobs: Sequence[Job] | None = None,
    cap_w: float | None = None,
    *,
    deg_source=None,
) -> tuple[float, list[LowerBoundDetail]]:
    """Compute ``T_low`` and its per-job breakdown.

    The first argument may be a
    :class:`~repro.core.context.SchedulingContext`, in which case ``jobs``
    and ``cap_w`` come from the context and must be omitted.  ``deg_source``
    overrides where degradations come from (e.g. an
    :class:`~repro.model.predictor.OracleDegradations` for a ground-truth
    bound); it defaults to the predictor itself.
    """
    from repro.core.context import SchedulingContext

    if isinstance(predictor, SchedulingContext):
        if jobs is not None or cap_w is not None:
            raise TypeError(
                "jobs/cap_w must be omitted when a SchedulingContext is given"
            )
        predictor, jobs, cap_w = predictor.predictor, predictor.jobs, predictor.cap_w
    elif jobs is None or cap_w is None:
        raise TypeError("jobs and cap_w are required without a SchedulingContext")
    if deg_source is None:
        deg_source = predictor
    if deg_source is predictor:
        fast = _tensor_lower_bound(predictor, jobs, cap_w)
        if fast is not None:
            return fast
    details: list[LowerBoundDetail] = []
    total = 0.0
    for job in jobs:
        best_corun = float("inf")
        best_solo = float("inf")
        for kind in DeviceKind:
            try:
                _, solo = predictor.best_solo(job.uid, kind, cap_w)
            except ValueError:
                continue
            best_solo = min(best_solo, solo)
            for other in jobs:
                if other.uid == job.uid:
                    continue
                if kind is DeviceKind.CPU:
                    pair = (job.uid, other.uid)
                else:
                    pair = (other.uid, job.uid)
                for setting in pair_settings_under_cap(predictor, *pair, cap_w):
                    f = (
                        setting.cpu_ghz
                        if kind is DeviceKind.CPU
                        else setting.gpu_ghz
                    )
                    l = predictor.solo_time(job.uid, kind, f)
                    d = deg_source.degradation(job.uid, kind, other.uid, setting)
                    best_corun = min(best_corun, l * (1.0 + d))
        if best_solo == float("inf"):
            raise ValueError(f"{job.uid} cannot run under the cap at all")
        contribution = min(best_corun, 2.0 * best_solo)
        details.append(
            LowerBoundDetail(
                job=job.uid,
                best_corun_s=best_corun,
                best_solo_s=best_solo,
                contribution_s=contribution,
            )
        )
        total += contribution
    return 0.5 * total, details


def _tensor_lower_bound(
    predictor, jobs: Sequence[Job], cap_w: float
) -> tuple[float, list[LowerBoundDetail]] | None:
    """Vectorized ``T_low`` over a tensor-backed predictor, or ``None``.

    Every minimum reduces the same candidate sets the scalar loops walk:
    ``t_corun_c[i, j, s]`` is computed with the identical arithmetic as the
    scalar ``l * (1.0 + d)``, and minima over float64 candidates are
    order-independent, so the result is bitwise equal.
    """
    tensor = getattr(predictor, "tensor", None)
    if tensor is None:
        return None
    if any(job.uid not in tensor.index for job in jobs):
        return None
    masks = tensor.masks(cap_w)
    details: list[LowerBoundDetail] = []
    total = 0.0
    for job in jobs:
        i = tensor.index[job.uid]
        partners = [tensor.index[o.uid] for o in jobs if o.uid != job.uid]
        best_corun = float("inf")
        best_solo = float("inf")
        for kind in DeviceKind:
            # The scalar loop skips the whole kind — co-run scan included —
            # when the job has no cap-feasible solo level on it.
            if not masks.best_solo_valid[kind][i]:
                continue
            best_solo = min(best_solo, float(masks.best_solo_time[kind][i]))
            if not partners:
                continue
            if kind is DeviceKind.CPU:
                times = tensor.t_corun_c[i, partners, :]
                ok = masks.pair_ok[i, partners, :]
            else:
                times = tensor.t_corun_g[partners, i, :]
                ok = masks.pair_ok[partners, i, :]
            if ok.any():
                best_corun = min(best_corun, float(times[ok].min()))
        if best_solo == float("inf"):
            raise ValueError(f"{job.uid} cannot run under the cap at all")
        contribution = min(best_corun, 2.0 * best_solo)
        details.append(
            LowerBoundDetail(
                job=job.uid,
                best_corun_s=best_corun,
                best_solo_s=best_solo,
                contribution_s=contribution,
            )
        )
        total += contribution
    return 0.5 * total, details
