"""The co-scheduling runtime facade.

One object that owns the whole pipeline of the paper's prototype runtime:
profile the workload standalone, characterize the degradation space once,
build the predictor, compute schedules with any of the five policies
(Random, Default_G, Default_C, HCS, HCS+), execute them on the ground-truth
engine, and report makespans, speedups, power traces, and the lower bound.

This is the main entry point for library users::

    from repro import CoScheduleRuntime, make_jobs, rodinia_programs

    runtime = CoScheduleRuntime(make_jobs(rodinia_programs()), cap_w=15.0)
    hcs = runtime.run_hcs(refine=True)
    random_mean = runtime.random_average(n=20).mean_makespan_s
    print(random_mean / hcs.makespan_s)   # speedup over Random

The runtime is wired through :mod:`repro.perf`: the predictor is wrapped in
a shared evaluation cache (``cache``), profiling and characterization
optionally persist to disk (``disk_cache`` / ``REPRO_CACHE_DIR``), and the
parallelizable steps fan out over ``executor`` (``"serial"``, ``"threads"``,
``"processes"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from collections.abc import Sequence

import numpy as np

from repro.hardware.calibration import DEFAULT_POWER_CAP_W, make_ivy_bridge
from repro.hardware.processor import IntegratedProcessor
from repro.workload.program import Job
from repro.engine.multiprog import DEFAULT_CS_OVERHEAD
from repro.engine.sim import ExecutionResult, Scenario, run as engine_run
from repro.model.characterize import characterize_space
from repro.model.predictor import CoRunPredictor
from repro.model.profiler import profile_workload
from repro.model.space import DegradationSpace
from repro.core.baselines import RandomOnlineSource, default_partition
from repro.core.bounds import lower_bound
from repro.core.context import SchedulingContext
from repro.core.freqpolicy import Bias, BiasedGovernor
from repro.core.hcs import HcsResult, hcs_schedule
from repro.core.objectives import Objective, governor_for
from repro.core.schedule import CoSchedule
from repro.perf.cache import EvalCache
from repro.perf.diskcache import resolve_disk_cache
from repro.perf.evaluator import CachingPredictor
from repro.perf.executor import make_executor
from repro.util.rng import default_rng, spawn_rng


@dataclass(frozen=True)
class ScheduleOutcome:
    """A schedule plus its measured (simulated ground-truth) execution.

    ``cache_stats`` is a snapshot of the runtime's shared evaluation-cache
    counters taken when the outcome was produced (``None`` for outcomes
    built outside a runtime).
    """

    policy: str
    schedule: CoSchedule | None
    execution: ExecutionResult
    scheduling_time_s: float = 0.0
    cache_stats: dict[str, float] | None = None

    @property
    def makespan_s(self) -> float:
        return self.execution.makespan_s


@dataclass(frozen=True)
class RandomAverage:
    """Aggregate of repeated Random-baseline runs (the paper uses 20)."""

    outcomes: tuple[ScheduleOutcome, ...]

    @property
    def mean_makespan_s(self) -> float:
        return float(np.mean([o.makespan_s for o in self.outcomes]))


def _random_outcome_task(seed, runtime: "CoScheduleRuntime", bias: Bias):
    """One Random-baseline sample (module-level for process-pool pickling)."""
    return runtime.run_random(seed=seed, bias=bias)


class CoScheduleRuntime:
    """End-to-end co-scheduling runtime over one processor and job set."""

    def __init__(
        self,
        jobs: Sequence[Job],
        *,
        processor: IntegratedProcessor | None = None,
        cap_w: float = DEFAULT_POWER_CAP_W,
        objective: Objective | str = Objective.MAKESPAN,
        space: DegradationSpace | None = None,
        executor=None,
        cache: EvalCache | None = None,
        disk_cache=None,
        backend: str = "tensor",
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        self.processor = processor if processor is not None else make_ivy_bridge()
        self.jobs = tuple(jobs)
        self.cap_w = cap_w
        self.objective = Objective.coerce(objective)
        self.backend = backend
        self.executor = make_executor(executor)
        self.cache = cache if cache is not None else EvalCache()
        disk = resolve_disk_cache(disk_cache)
        self.table = profile_workload(
            self.processor, self.jobs, executor=self.executor, disk_cache=disk
        )
        self.space = (
            space
            if space is not None
            else characterize_space(
                self.processor, executor=self.executor, disk_cache=disk
            )
        )
        self.predictor = CachingPredictor(
            CoRunPredictor(self.processor, self.table, self.space),
            cache=self.cache,
        )

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def context(
        self, *, objective: Objective | str | None = None, seed=None
    ) -> SchedulingContext:
        """The frozen :class:`SchedulingContext` the policies run under.

        ``objective`` defaults to the runtime's objective; pass one to
        derive a one-off context (e.g. compute an energy-optimal schedule
        from a runtime otherwise used for makespan studies).  The context
        inherits the runtime's evaluation ``backend``.
        """
        return SchedulingContext(
            jobs=self.jobs,
            cap_w=self.cap_w,
            predictor=self.predictor,
            objective=(
                self.objective if objective is None else Objective.coerce(objective)
            ),
            executor=self.executor,
            seed=seed,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def run_hcs(
        self, *, refine: bool = False, seed=None, threshold: float | None = None
    ) -> ScheduleOutcome:
        """HCS (or HCS+ with ``refine=True``): schedule, then execute."""
        kwargs = {}
        if threshold is not None:
            kwargs["threshold"] = threshold
        result: HcsResult = hcs_schedule(
            self.context(seed=seed), refine=refine, **kwargs
        )
        execution = engine_run(
            self.processor,
            Scenario.from_schedule(result.schedule),
            governor=result.governor,
        )
        return ScheduleOutcome(
            policy="hcs+" if refine else "hcs",
            schedule=result.schedule,
            execution=execution,
            scheduling_time_s=result.scheduling_time_s,
            cache_stats=self.cache.snapshot(),
        )

    def run_random(self, *, seed=None, bias: Bias = Bias.GPU) -> ScheduleOutcome:
        """One Random-baseline sample: online random picks under a biased
        cap policy (the paper's semantics — an idle processor grabs a random
        remaining job, or is occasionally left idle)."""
        source = RandomOnlineSource(self.jobs, seed=seed)
        governor = BiasedGovernor(self.predictor, self.cap_w, bias)
        execution = engine_run(
            self.processor, Scenario(), policy=source, governor=governor
        )
        return ScheduleOutcome(
            policy="random",
            schedule=None,
            execution=execution,
            cache_stats=self.cache.snapshot(),
        )

    def random_average(
        self, *, n: int = 20, seed=None, bias: Bias = Bias.GPU, executor=None
    ) -> RandomAverage:
        """Average of ``n`` Random runs with independent seeds (paper: 20).

        The repetitions are independent and fan out over ``executor``
        (default: the runtime's executor); results are identical across
        backends because every repetition is seeded up front.
        """
        rng = default_rng(seed)
        pool = self.executor if executor is None else make_executor(executor)
        outcomes = pool.map(
            partial(_random_outcome_task, runtime=self, bias=bias),
            spawn_rng(rng, n),
        )
        return RandomAverage(outcomes=tuple(outcomes))

    def run_default(
        self,
        *,
        bias: Bias = Bias.GPU,
        cs_overhead: float = DEFAULT_CS_OVERHEAD,
    ) -> ScheduleOutcome:
        """Default baseline (Default_G / Default_C by ``bias``)."""
        part = default_partition(self.table, self.jobs)
        governor = BiasedGovernor(self.predictor, self.cap_w, bias)
        execution = engine_run(
            self.processor,
            Scenario.timeshare(
                part.cpu_partition, part.gpu_partition, cs_overhead=cs_overhead
            ),
            governor=governor,
        )
        policy = "default_g" if bias is Bias.GPU else "default_c"
        return ScheduleOutcome(
            policy=policy,
            schedule=None,
            execution=execution,
            cache_stats=self.cache.snapshot(),
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def execute(self, schedule: CoSchedule, governor=None) -> ExecutionResult:
        """Execute an arbitrary schedule.

        The default governor follows the runtime's objective (the HCS
        ModelGovernor for makespan, the energy-aware one otherwise)."""
        if governor is None:
            governor = governor_for(self.predictor, self.cap_w, self.objective)
        return engine_run(
            self.processor,
            Scenario.from_schedule(schedule),
            governor=governor,
        )

    def lower_bound_s(self, *, deg_source=None) -> float:
        """The Section IV-B lower bound for this job set and cap."""
        bound, _ = lower_bound(
            self.predictor, self.jobs, self.cap_w, deg_source=deg_source
        )
        return bound

    def perf_stats(self) -> dict[str, float]:
        """Evaluation-layer counters (cache hits/misses/entries, hit rate)."""
        return self.cache.snapshot()
