"""The shared scheduling context: one bundle, every scheduler.

Before this module each scheduler entry point re-plumbed its own
``(predictor, jobs, cap_w, seed, evaluator, executor, ...)`` signature and
re-built its own governor.  A :class:`SchedulingContext` freezes that whole
bundle once — jobs, predictor, cap, :class:`~repro.core.objectives.Objective`,
governor (via a pluggable factory), memoized evaluator, executor, eval
cache, and seed — and every scheduler in the registry plus ``refine``,
``online``, ``bounds``, and ``baselines`` accepts it in place of its legacy
first arguments::

    ctx = SchedulingContext.build(jobs, cap_w=15.0, objective="energy")
    hcs = hcs_schedule(ctx, refine=True)
    ga = genetic_schedule(ctx)              # same model, governor, cache
    bound, _ = lower_bound(ctx)

The objective travels inside the context: the governor factory resolves a
makespan context to the paper's :class:`~repro.core.freqpolicy.ModelGovernor`
and an energy/EDP context to the
:class:`~repro.core.objectives.EnergyAwareGovernor`, and the evaluator's
cache keys are tagged with the objective so scores can never leak between
objectives sharing one cache.

Legacy call shapes (``hcs_schedule(predictor, jobs, cap_w, ...)``) remain
supported through :meth:`SchedulingContext.coerce`, which wraps them in an
equivalent context on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Sequence

import numpy as np

from repro.workload.program import Job
from repro.core.objectives import Objective, governor_for
from repro.perf.cache import EvalCache
from repro.perf.evaluator import CachingPredictor, ScheduleEvaluator
from repro.perf.executor import Executor, make_executor
from repro.util.rng import default_rng


@dataclass(frozen=True)
class SchedulingContext:
    """Frozen bundle of everything a scheduler needs for one problem.

    Only ``jobs``, ``cap_w``, and ``predictor`` are required; the governor,
    evaluator, executor, and cache are resolved consistently on
    construction (the governor from ``governor_factory`` and the objective,
    the evaluator bound to that governor with objective-tagged cache keys).
    Stochastic schedulers draw their randomness from :meth:`rng`, so two
    contexts with equal seeds replay identically.
    """

    jobs: tuple[Job, ...]
    #: Deprecated alias for a one-node fleet's cap: readable for
    #: compatibility (it always equals the single node's resolved cap) but
    #: new code goes through :func:`repro.core.feasibility.context_cap` or
    #: :attr:`fleet`.  ``None`` on multi-node contexts, which have no
    #: single cap.
    cap_w: float | None = None
    predictor: object = None
    objective: Objective = Objective.MAKESPAN
    governor: object | None = None
    evaluator: ScheduleEvaluator | None = None
    executor: Executor | object | None = None
    cache: EvalCache | None = None
    seed: int | np.random.Generator | None = None
    governor_factory: Callable[..., object] = governor_for
    sanitize: bool = False
    backend: str = "tensor"
    #: The machines this context schedules onto.  ``None`` coerces to
    #: ``Fleet.single(cap_w)`` — the classic one-APU world, byte-identical
    #: to the pre-fleet scalar path.  Multi-node contexts carry no single
    #: governor/evaluator; the fleet driver derives per-node sub-contexts.
    fleet: object | None = None

    def __post_init__(self) -> None:
        from repro.core.fleet import Fleet, NodePredictor, node_predictor

        if not self.jobs:
            raise ValueError("cannot schedule an empty job set")
        if self.backend not in ("tensor", "scalar"):
            raise ValueError(
                f"unknown backend {self.backend!r}; known: tensor, scalar"
            )
        if self.predictor is None:
            raise ValueError(
                "a context needs a predictor (use SchedulingContext.build "
                "to resolve one from the workload)"
            )
        set_ = object.__setattr__
        set_(self, "jobs", tuple(self.jobs))
        set_(self, "objective", Objective.coerce(self.objective))
        set_(self, "executor", make_executor(self.executor))
        if self.fleet is None:
            if self.cap_w is None:
                raise ValueError("a context needs cap_w or a fleet")
            set_(self, "fleet", Fleet.single(self.cap_w))
        else:
            if isinstance(self.fleet, dict):
                set_(self, "fleet", Fleet.from_dict(self.fleet))
            if len(self.fleet.nodes) > 1:
                if self.cap_w is not None:
                    raise ValueError(
                        "cap_w has no meaning on a multi-node fleet; give "
                        "per-node caps or a shared budget on the Fleet"
                    )
            else:
                cap = self.fleet.node_caps()[0]
                if self.cap_w is not None and self.cap_w != cap:
                    raise ValueError(
                        f"cap_w={self.cap_w} conflicts with the single "
                        f"node's resolved cap {cap}"
                    )
                set_(self, "cap_w", cap)
                node = self.fleet.nodes[0]
                # Derivations (replace/with_*) re-run this with an already
                # node-scaled predictor: keep it if the node matches, else
                # rewrap from the unscaled base — never scale twice.
                base = self.predictor
                if isinstance(base, NodePredictor):
                    if base.node != node:
                        set_(self, "predictor", node_predictor(base.inner, node))
                else:
                    set_(self, "predictor", node_predictor(base, node))
        if len(self.fleet.nodes) > 1:
            # A multi-node context is a placement problem, not a single
            # replay: it resolves no governor/evaluator (the fleet driver
            # derives per-node sub-contexts that do), only the shared
            # executor/cache plumbing below.
            if self.cache is None:
                set_(self, "cache", EvalCache())
            return
        if self.cache is None:
            set_(
                self,
                "cache",
                self.evaluator.cache if self.evaluator is not None else EvalCache(),
            )
        if self.backend == "scalar":
            # A predictor carried over from a tensor context keeps serving
            # tensor answers unless unwrapped; scalar means scalar.
            from repro.perf.tensor import TensorBackedPredictor

            predictor = self.predictor
            while isinstance(predictor, TensorBackedPredictor):
                predictor = predictor.inner
            set_(self, "predictor", predictor)
        elif self.governor is None and self.evaluator is None:
            # Tensor pipeline: precompute (memoized per model), rebuild the
            # governor over the tensor-served predictor, and reduce the
            # governor's choices into replay tables for the batch evaluator.
            # Any piece that cannot be tensorized exactly degrades to the
            # scalar path below.
            from repro.perf.tensor import (
                BatchScheduleEvaluator,
                PairTables,
                tensorize,
            )

            wrapped = tensorize(self.predictor, [j.uid for j in self.jobs])
            if wrapped is not None:
                set_(self, "predictor", wrapped)
                governor = self.governor_factory(
                    wrapped, self.cap_w, self.objective
                )
                set_(self, "governor", governor)
                tables = PairTables.build(wrapped.tensor, governor, self.cap_w)
                if tables is not None:
                    set_(
                        self,
                        "evaluator",
                        BatchScheduleEvaluator(
                            wrapped,
                            governor,
                            cache=self.cache,
                            objective=self.objective,
                            tensor=wrapped.tensor,
                            tables=tables,
                        ),
                    )
        if self.governor is None:
            governor = (
                self.evaluator.governor
                if self.evaluator is not None
                else self.governor_factory(self.predictor, self.cap_w, self.objective)
            )
            set_(self, "governor", governor)
        if self.evaluator is None:
            set_(
                self,
                "evaluator",
                ScheduleEvaluator(
                    self.predictor,
                    self.governor,
                    cache=self.cache,
                    objective=self.objective,
                ),
            )
        elif self.evaluator.objective != self.objective.value:
            raise ValueError(
                f"evaluator scores {self.evaluator.objective!r} but the "
                f"context objective is {self.objective.value!r}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        jobs: Sequence[Job],
        *,
        cap_w: float | None = None,
        fleet=None,
        objective: Objective | str = Objective.MAKESPAN,
        predictor=None,
        processor=None,
        executor=None,
        cache: EvalCache | None = None,
        disk_cache=None,
        seed=None,
        governor=None,
        governor_factory: Callable[..., object] | None = None,
        backend: str = "tensor",
    ) -> "SchedulingContext":
        """Resolve a full context, building the model on the fly if needed.

        When ``predictor`` is omitted, the workload is profiled and the
        degradation space characterized (optionally fanned out over
        ``executor`` and persisted via ``disk_cache``) — the same behavior
        the ``schedule()`` facade always had.
        """
        if not jobs:
            raise ValueError("cannot schedule an empty job set")
        pool = make_executor(executor)
        shared_cache = cache if cache is not None else EvalCache()
        if predictor is None:
            from repro.model.characterize import characterize_space
            from repro.model.predictor import CoRunPredictor
            from repro.model.profiler import profile_workload

            if processor is None:
                from repro.hardware.calibration import make_ivy_bridge

                processor = make_ivy_bridge()
            table = profile_workload(
                processor, jobs, executor=pool, disk_cache=disk_cache
            )
            space = characterize_space(
                processor, executor=pool, disk_cache=disk_cache
            )
            predictor = CachingPredictor(
                CoRunPredictor(processor, table, space), cache=shared_cache
            )
        elif cache is not None and not isinstance(predictor, CachingPredictor):
            predictor = CachingPredictor(predictor, cache=shared_cache)
        return cls(
            jobs=tuple(jobs),
            cap_w=cap_w,
            predictor=predictor,
            objective=objective,
            governor=governor,
            executor=pool,
            cache=shared_cache,
            seed=seed,
            governor_factory=(
                governor_factory if governor_factory is not None else governor_for
            ),
            backend=backend,
            fleet=fleet,
        )

    @classmethod
    def coerce(
        cls,
        context,
        jobs: Sequence[Job] | None = None,
        cap_w: float | None = None,
        *,
        objective: Objective | str | None = None,
        governor=None,
        evaluator: ScheduleEvaluator | None = None,
        executor=None,
        cache: EvalCache | None = None,
        seed=None,
    ) -> "SchedulingContext":
        """Adapt a legacy ``(predictor, jobs, cap_w, ...)`` call to a context.

        ``context`` may already be a :class:`SchedulingContext`, in which
        case ``jobs``/``cap_w`` must be omitted and only ``seed`` /
        ``objective`` may override the bundled values; anything else is the
        scheduler's legacy first argument (a predictor), and the remaining
        pieces are resolved exactly as the legacy entry point did.
        """
        if isinstance(context, cls):
            if jobs is not None or cap_w is not None:
                raise TypeError(
                    "jobs/cap_w must be omitted when a SchedulingContext is given"
                )
            ctx = context
            if seed is not None:
                ctx = ctx.with_seed(seed)
            if objective is not None:
                objective = Objective.coerce(objective)
                if objective is not ctx.objective:
                    ctx = ctx.with_objective(objective)
            return ctx
        if jobs is None or cap_w is None:
            raise TypeError(
                "jobs and cap_w are required without a SchedulingContext"
            )
        return cls(
            jobs=tuple(jobs),
            cap_w=cap_w,
            predictor=context,
            objective=Objective.MAKESPAN if objective is None else objective,
            governor=governor,
            evaluator=evaluator,
            executor=executor,
            cache=cache,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_jobs(self, jobs: Sequence[Job]) -> "SchedulingContext":
        """Same model and policies over a different job set."""
        return replace(self, jobs=tuple(jobs))

    def with_seed(self, seed) -> "SchedulingContext":
        """Same context with a different random seed."""
        return replace(self, seed=seed)

    def with_objective(self, objective: Objective | str) -> "SchedulingContext":
        """Re-target the objective; governor and evaluator are rebuilt.

        The eval cache is shared — objective-tagged keys keep the scores
        apart — so model queries stay warm across objectives.
        """
        return SchedulingContext(
            jobs=self.jobs,
            cap_w=self.cap_w,
            predictor=self.predictor,
            objective=objective,
            executor=self.executor,
            cache=self.cache,
            seed=self.seed,
            governor_factory=self.governor_factory,
            sanitize=self.sanitize,
            backend=self.backend,
            fleet=self.fleet,
        )

    def with_backend(self, backend: str) -> "SchedulingContext":
        """Same problem on a different evaluation backend.

        Governor and evaluator are rebuilt from scratch (the tensor
        pipeline runs for ``"tensor"``, the plain scalar stack for
        ``"scalar"``); the eval cache is shared — backend-tagged schedule
        keys keep the scores apart, and the model-query keys are
        value-identical across backends by construction.
        """
        return SchedulingContext(
            jobs=self.jobs,
            cap_w=self.cap_w,
            predictor=self.predictor,
            objective=self.objective,
            executor=self.executor,
            cache=self.cache,
            seed=self.seed,
            governor_factory=self.governor_factory,
            sanitize=self.sanitize,
            backend=backend,
            fleet=self.fleet,
        )

    def with_sanitizer(self, enabled: bool = True) -> "SchedulingContext":
        """Same context with the invariant sanitizer armed (or disarmed).

        A sanitizing context makes every registry scheduler, refinement
        pass, and service batch verify its output against the paper's
        Definition 2.1 invariants (see :mod:`repro.analysis.invariants`),
        raising :class:`~repro.errors.ScheduleInvariantError` on violation.
        ``REPRO_SANITIZE=1`` in the environment arms every context at once.
        """
        return replace(self, sanitize=enabled)

    @property
    def sanitizing(self) -> bool:
        """Is invariant verification active for this context?"""
        if self.sanitize:
            return True
        from repro.analysis.invariants import env_sanitizer_enabled

        return env_sanitizer_enabled()

    def with_cap(self, cap_w: float) -> "SchedulingContext":
        """Re-target the power cap; governor and evaluator are rebuilt.

        The evaluator gets a *fresh* cache: schedule-score keys carry no
        cap, so sharing one across caps would serve stale scores.  The
        single node keeps its identity (name and scaling) under the new
        cap; re-cap a multi-node context with :meth:`with_fleet`.
        """
        from dataclasses import replace as _replace

        from repro.core.fleet import Fleet

        if len(self.fleet.nodes) > 1:
            raise ValueError(
                "a multi-node context has no single cap; use with_fleet()"
            )
        node = _replace(self.fleet.nodes[0], cap_w=cap_w)
        return SchedulingContext(
            jobs=self.jobs,
            cap_w=cap_w,
            predictor=self.predictor,
            objective=self.objective,
            executor=self.executor,
            seed=self.seed,
            governor_factory=self.governor_factory,
            sanitize=self.sanitize,
            backend=self.backend,
            fleet=Fleet(nodes=(node,)),
        )

    def with_fleet(self, fleet) -> "SchedulingContext":
        """Same problem over a different fleet.

        Governor and evaluator are rebuilt and the eval cache starts fresh
        (schedule-score keys carry no node or cap identity).
        """
        return SchedulingContext(
            jobs=self.jobs,
            predictor=self.base_predictor,
            objective=self.objective,
            executor=self.executor,
            seed=self.seed,
            governor_factory=self.governor_factory,
            sanitize=self.sanitize,
            backend=self.backend,
            fleet=fleet,
        )

    # ------------------------------------------------------------------
    # Fleet plumbing
    # ------------------------------------------------------------------
    @property
    def base_predictor(self):
        """The predictor before any node scaling (the calibrated model)."""
        from repro.core.fleet import NodePredictor

        predictor = self.predictor
        while isinstance(predictor, NodePredictor):
            predictor = predictor.inner
        return predictor

    def node_context(self, index: int, jobs: Sequence[Job] | None = None):
        """A single-node sub-context for ``fleet.nodes[index]``.

        The sub-context carries that node (with its resolved cap made
        explicit) as a one-node fleet, the *unscaled* base predictor (the
        sub-context's own construction applies the node scaling), a fresh
        eval cache — schedule keys carry no node identity, so sharing the
        parent's would leak scores across nodes — and a per-node seed
        derived from the context seed so stochastic schedulers diverge
        between nodes but replay identically run-to-run.
        """
        from dataclasses import replace as _replace

        from repro.core.fleet import Fleet

        node = self.fleet.nodes[index]
        cap = self.fleet.node_caps()[index]
        seed = self.seed
        if isinstance(seed, (int, np.integer)):
            seed = int(seed) + 1_000_003 * index
        return SchedulingContext(
            jobs=tuple(jobs) if jobs is not None else self.jobs,
            predictor=self.base_predictor,
            objective=self.objective,
            executor=self.executor,
            seed=seed,
            governor_factory=self.governor_factory,
            sanitize=self.sanitize,
            backend=self.backend,
            fleet=Fleet(nodes=(_replace(node, cap_w=cap),)),
        )

    # ------------------------------------------------------------------
    # Shared services
    # ------------------------------------------------------------------
    @property
    def processor(self):
        """The ground-truth machine the predictor was built against."""
        return self.predictor.processor

    def simulate(
        self,
        scenario,
        *,
        policy=None,
        governor=None,
        record_events: bool = False,
    ):
        """Execute a :class:`~repro.engine.sim.Scenario` on this context.

        Plumbs the context into the unified engine entry point: the
        processor comes from the predictor, the governor defaults to the
        context's, the result is labelled with the context's objective,
        and the invariant verifier referees it when the context
        sanitizes.  Returns an :class:`~repro.engine.sim.ExecutionResult`.
        """
        from repro.engine.sim import run as engine_run

        return engine_run(
            self,
            scenario,
            policy=policy,
            governor=governor,
            record_events=record_events,
        )

    def rng(self) -> np.random.Generator:
        """A generator seeded from the context (fresh on every call)."""
        return default_rng(self.seed)

    def score(self, schedule) -> float:
        """Predicted objective score of a schedule (memoized)."""
        return self.evaluator(schedule)

    def predicted_makespan(self, schedule) -> float:
        """Predicted makespan regardless of the objective (memoized)."""
        return self.evaluator.makespan_of(schedule)

    def metrics(self, schedule):
        """Predicted makespan+energy metrics of a schedule (memoized)."""
        return self.evaluator.metrics(schedule)

    def perf_stats(self) -> dict[str, float]:
        """Shared eval-cache counters."""
        return self.cache.snapshot()
