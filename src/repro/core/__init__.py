"""Co-scheduling algorithms (the paper's Section IV).

The optimal co-scheduling problem (Definition 2.1) is NP-hard, so the paper
contributes:

* the **Co-Run Theorem** — when co-running two jobs beats running them
  sequentially (:mod:`repro.core.theorem`);
* a 3-step **heuristic algorithm (HCS)** — theorem-based partition,
  preference categorization, greedy minimum-interference pairing
  (:mod:`repro.core.partition`, :mod:`repro.core.categorize`,
  :mod:`repro.core.greedy`, assembled in :mod:`repro.core.hcs`);
* a 3-step **post local refinement (HCS+)** (:mod:`repro.core.refine`);
* a **lower bound** on the optimal makespan (:mod:`repro.core.bounds`);

plus the comparison points of Section VI-A — Random and Default baselines
(:mod:`repro.core.baselines`) with GPU-/CPU-biased power-cap policies
(:mod:`repro.core.freqpolicy`) — a brute-force exact search for small
instances (:mod:`repro.core.bruteforce`), and a one-stop runtime facade
(:mod:`repro.core.runtime`).
"""

from repro.core.theorem import (
    corun_lengths,
    corun_makespan,
    corun_beneficial_theorem,
    corun_beneficial_exact,
)
from repro.core.schedule import (
    CoSchedule,
    PredictedMetrics,
    predicted_makespan,
    predicted_metrics,
)
from repro.core.context import SchedulingContext
from repro.core.feasibility import (
    pair_energy_j,
    pair_settings_under_cap,
    predicted_power,
    solo_energy_j,
    solo_levels_under_cap,
)
from repro.core.freqpolicy import Bias, BiasedGovernor, ModelGovernor
from repro.core.partition import partition_jobs
from repro.core.categorize import Preference, categorize_jobs
from repro.core.greedy import greedy_schedule
from repro.core.refine import refine_schedule
from repro.core.hcs import HcsResult, hcs_schedule
from repro.core.bounds import LowerBoundDetail, lower_bound
from repro.core.baselines import default_partition, default_schedule, random_schedule
from repro.core.bruteforce import brute_force_best
from repro.core.astar import AStarScheduler, astar_schedule
from repro.core.genetic import GaConfig, GeneticScheduler, genetic_schedule
from repro.core.objectives import (
    EnergyAwareGovernor,
    Objective,
    governor_for,
    score_execution,
)
from repro.core.online import FifoOnlinePolicy, HcsOnlinePolicy
from repro.core.portfolio import DEFAULT_MEMBERS, portfolio_schedule
from repro.core.splitting import SplitOutcome, best_split
from repro.core.runtime import CoScheduleRuntime, RandomAverage, ScheduleOutcome
from repro.errors import InfeasibleCapError

# NOTE: binding ``schedule`` here intentionally shadows the submodule
# attribute ``repro.core.schedule`` on the package object; the submodule
# stays importable (``from repro.core.schedule import ...``) via sys.modules.
from repro.core.api import (
    ScheduleResult,
    Scheduler,
    make_scheduler,
    register_scheduler,
    schedule,
    scheduler_names,
)

__all__ = [
    "corun_lengths",
    "corun_makespan",
    "corun_beneficial_theorem",
    "corun_beneficial_exact",
    "CoSchedule",
    "PredictedMetrics",
    "predicted_makespan",
    "predicted_metrics",
    "SchedulingContext",
    "pair_energy_j",
    "pair_settings_under_cap",
    "predicted_power",
    "solo_energy_j",
    "solo_levels_under_cap",
    "Bias",
    "BiasedGovernor",
    "ModelGovernor",
    "partition_jobs",
    "Preference",
    "categorize_jobs",
    "greedy_schedule",
    "refine_schedule",
    "HcsResult",
    "hcs_schedule",
    "LowerBoundDetail",
    "lower_bound",
    "random_schedule",
    "default_schedule",
    "default_partition",
    "brute_force_best",
    "AStarScheduler",
    "astar_schedule",
    "GaConfig",
    "GeneticScheduler",
    "genetic_schedule",
    "EnergyAwareGovernor",
    "Objective",
    "governor_for",
    "score_execution",
    "FifoOnlinePolicy",
    "HcsOnlinePolicy",
    "DEFAULT_MEMBERS",
    "portfolio_schedule",
    "SplitOutcome",
    "best_split",
    "CoScheduleRuntime",
    "RandomAverage",
    "ScheduleOutcome",
    "InfeasibleCapError",
    "ScheduleResult",
    "Scheduler",
    "make_scheduler",
    "register_scheduler",
    "schedule",
    "scheduler_names",
]
