"""One-shot report generation: every experiment into a single markdown file.

``python -m repro.report [output.md]`` (or :func:`generate_report`) runs
the full experiment registry and writes the rendered sections to a RESULTS
file — the reproduction's equivalent of the paper's evaluation section,
regenerated from scratch on the current calibration.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro import __version__
from repro.experiments.registry import EXPERIMENTS, ExperimentConfig, run_experiment


def generate_report(
    path: str | Path = "RESULTS.md",
    *,
    names: list[str] | None = None,
    echo: bool = True,
    config: ExperimentConfig | None = None,
) -> Path:
    """Run experiments and write their renderings to ``path``.

    ``names`` restricts the run (default: the full registry, deduplicated —
    fig5/fig6 share a driver).  ``config`` applies uniform overrides
    (seed, cap, executor) to every driver that supports them.
    """
    path = Path(path)
    chosen = names if names is not None else list(EXPERIMENTS)
    seen_fns = set()

    lines = [
        "# RESULTS — regenerated evaluation",
        "",
        f"repro version {__version__}; every section produced by "
        "`python -m repro <name>` on the default calibration and seeds.",
        "",
    ]
    for name in chosen:
        fn = EXPERIMENTS[name]
        if fn in seen_fns:
            continue
        seen_fns.add(fn)
        t0 = time.perf_counter()
        result = run_experiment(name, config=config)
        elapsed = time.perf_counter() - t0
        if echo:
            print(f"[{result.name}] done in {elapsed:.1f}s")
        lines.append(f"## {result.name}: {result.title}")
        lines.append("")
        lines.append("```text")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
    path.write_text("\n".join(lines))
    return path


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    args = sys.argv[1:] if argv is None else argv
    target = args[0] if args else "RESULTS.md"
    out = generate_report(target)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
