"""Optional on-disk cache for characterization surfaces and profile tables.

Repeated CLI / experiment runs re-pay the two offline costs every time: the
121-co-run characterization sweep and the per-job standalone profiling.
Both are pure functions of their content-hashed inputs, so a warm run can
skip them entirely.  Entries are pickles keyed by :func:`repro.perf.cache.
fingerprint` digests; writes are atomic (tempfile + rename), and corrupt or
unreadable entries degrade to a recompute rather than an error.

Enable it by passing ``disk_cache=<dir>`` to the entry points, or globally
via the ``REPRO_CACHE_DIR`` environment variable (the CLI's ``--cache-dir``
flag sets the same knob).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class DiskCache:
    """A directory of pickled, content-addressed cache entries."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.loads = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str):
        """The cached object, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None
        self.loads += 1
        return value

    def store(self, key: str, value) -> None:
        """Atomically persist ``value`` under ``key`` (best effort)."""
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
            self.stores += 1
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()


def resolve_disk_cache(spec=None) -> DiskCache | None:
    """Coerce a disk-cache spec into a :class:`DiskCache` (or ``None``).

    ``None`` consults ``REPRO_CACHE_DIR``; ``False`` disables caching even
    when the environment variable is set; a path or :class:`DiskCache`
    passes through.
    """
    if spec is False:
        return None
    if spec is None:
        env = os.environ.get(CACHE_DIR_ENV)
        return DiskCache(env) if env else None
    if isinstance(spec, DiskCache):
        return spec
    return DiskCache(spec)
