"""Picklable task functions for executor fan-out.

Process pools pickle the task callable, so the functions the library maps
across executors live here at module level (closures would break the
``processes`` backend).  All tasks are pure functions of their arguments —
that is what guarantees serial == threads == processes results.
"""

from __future__ import annotations

from functools import partial
from collections.abc import Sequence

from repro.perf.executor import make_executor


def _makespan_task(schedule, predictor, governor) -> float:
    from repro.core.schedule import predicted_makespan

    return predicted_makespan(schedule, predictor, governor)


def map_makespans(executor, predictor, governor, schedules: Sequence) -> list[float]:
    """Predicted makespans of many schedules, in input order."""
    fn = partial(_makespan_task, predictor=predictor, governor=governor)
    return make_executor(executor).map(fn, list(schedules))


def _metrics_task(schedule, predictor, governor):
    from repro.core.schedule import predicted_metrics

    return predicted_metrics(schedule, predictor, governor)


def map_predicted_metrics(executor, predictor, governor, schedules: Sequence):
    """Predicted makespan+energy metrics of many schedules, in input order."""
    fn = partial(_metrics_task, predictor=predictor, governor=governor)
    return make_executor(executor).map(fn, list(schedules))


def _pair_degradation_task(pair, processor, setting):
    """Both sides' steady degradations for one (cpu, gpu) profile pair."""
    from repro.engine.corun import steady_degradation
    from repro.hardware.device import DeviceKind

    cpu_profile, gpu_profile = pair
    d_c = steady_degradation(
        processor, cpu_profile, DeviceKind.CPU, gpu_profile, setting
    )
    d_g = steady_degradation(
        processor, gpu_profile, DeviceKind.GPU, cpu_profile, setting
    )
    return d_c, d_g


def map_pair_degradations(executor, processor, setting, pairs: Sequence):
    """Steady degradations for many profile pairs, in input order."""
    fn = partial(_pair_degradation_task, processor=processor, setting=setting)
    return make_executor(executor).map(fn, list(pairs))
