"""Vectorized tensor evaluation backend: batched + delta makespan evaluation.

PR 1's :class:`~repro.perf.cache.EvalCache` deduplicates repeated model
queries but leaves every *cold* query on the scalar Python call chain
(``CoRunPredictor.degradations`` -> ``ProfileTable.demand_gbps`` -> staged
bilinear interpolation), one ``(pair, setting)`` at a time.  This module
precomputes the whole question space once per model and answers everything
afterwards with O(1) array lookups:

:class:`TensorModel`
    Dense ``float64`` tensors over the full cross-product
    ``(cpu_job x gpu_job x frequency_setting)`` — degradation pair, co-run
    time pair, pair power, per-cap boolean feasibility masks — plus
    per-``(job, device)`` solo time/power vectors.  Built by vectorizing
    the :class:`~repro.model.interpolation.BilinearGrid` evaluation and the
    :class:`~repro.model.profiler.ProfileTable` lookups over arrays,
    operation for operation, so every element is *bitwise identical* to the
    scalar chain's answer.

:class:`TensorBackedPredictor`
    A drop-in predictor wrapper that serves the hot queries from the tensor
    through the same :class:`~repro.perf.cache.EvalCache` keys the scalar
    :class:`~repro.perf.evaluator.CachingPredictor` uses — identical cache
    hit/miss behavior, but a miss costs an array lookup instead of an
    interpolation chain.  Queries outside the tensor's coverage (unknown
    uids, off-grid frequencies) delegate to the wrapped predictor.

:class:`PairTables`
    Per-(governor, cap) reduction of the tensors: for every (cpu job, gpu
    job) pair the governor's chosen setting and the resulting co-run
    times/power, and for every (job, device) the chosen solo level — the
    complete set of constants a timeline replay consumes.  Argmin ties
    resolve to the first feasible setting in enumeration order, exactly as
    the governors' ``min()`` does.

:class:`BatchScheduleEvaluator`
    A :class:`~repro.perf.evaluator.ScheduleEvaluator` whose replay is an
    O(1)-per-event loop over :class:`PairTables` with

    * **delta re-evaluation**: loop-top replay states are snapshotted, and a
      later schedule sharing queue prefixes (the HCS+ adjacent/random/cross
      refinement moves) resumes from the deepest matching snapshot instead
      of replaying from t=0;
    * **batched lockstep evaluation**: ``evaluate_all`` scores an entire GA
      population / brute-force chunk in one vectorized sweep, advancing all
      schedules event-by-event with masked NumPy updates.

    Scores are bitwise identical to the scalar evaluator's; cache keys are
    tagged with the backend so mixed backends can never serve each other's
    entries.

Anything the tensors cannot represent exactly — oracle or noisy predictors,
subclassed spaces, jobs missing from the profile table — makes
:func:`tensorize` return ``None`` and the caller falls back to the scalar
path.  Exactness is enforced by ``tests/perf/test_tensor_model.py`` /
``test_tensor_equivalence.py`` and the ``REPRO_SANITIZE=1`` verifier.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.units import Hertz, PowerScale, Seconds, SpeedScale, Watts
from repro.errors import InfeasibleCapError
from repro.hardware.device import DeviceKind
from repro.perf.cache import EvalCache, ensure_cache
from repro.perf.evaluator import CachingPredictor, ScheduleEvaluator, schedule_key

#: Refuse to materialize pair tensors larger than this many elements each
#: (n_jobs^2 x n_settings).  Beyond it the precompute no longer amortizes
#: and the memory cost stops being negligible; callers fall back to scalar.
MAX_TENSOR_ELEMENTS = 2_000_000

#: Completion tolerance of the mean-field replay (must equal
#: ``repro.core.schedule._EPS``; asserted by the equivalence tests).
_EPS = 1e-12


def _grid_eval(grid, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`BilinearGrid.__call__`, operation for operation.

    Every step mirrors the scalar implementation exactly (same clip,
    ``searchsorted`` side, index clamp, and left-to-right sum order), so
    each output element is bitwise equal to the scalar call at the same
    coordinates.
    """
    xs, ys, v = grid.x_levels, grid.y_levels, grid.values
    x = np.clip(x, xs[0], xs[-1])
    y = np.clip(y, ys[0], ys[-1])

    i = np.searchsorted(xs, x, side="right") - 1
    j = np.searchsorted(ys, y, side="right") - 1
    i = np.clip(i, 0, xs.size - 2)
    j = np.clip(j, 0, ys.size - 2)

    tx = (x - xs[i]) / (xs[i + 1] - xs[i])
    ty = (y - ys[j]) / (ys[j + 1] - ys[j])
    v00 = v[i, j]
    v01 = v[i, j + 1]
    v10 = v[i + 1, j]
    v11 = v[i + 1, j + 1]
    return (
        v00 * (1 - tx) * (1 - ty)
        + v10 * tx * (1 - ty)
        + v01 * (1 - tx) * ty
        + v11 * tx * ty
    )


@dataclass(frozen=True)
class _CapMasks:
    """Cap-dependent feasibility masks and best-solo reductions."""

    cap_w: Watts
    pair_ok: np.ndarray               # (n, n, S) bool
    solo_ok: dict                      # kind -> (n, L) bool
    best_solo_idx: dict                # kind -> (n,) int (argmin time over feasible)
    best_solo_time: dict               # kind -> (n,) float (inf when infeasible)
    best_solo_valid: dict              # kind -> (n,) bool


class TensorModel:
    """Precomputed dense model tensors for one (predictor, job set).

    ``base`` must be a plain :class:`~repro.model.predictor.CoRunPredictor`
    (exact type — subclasses may override the arithmetic) over an exact
    :class:`~repro.model.profiler.ProfileTable` and a
    :class:`~repro.model.space.DegradationSpace` /
    :class:`~repro.model.space.StagedDegradationSpace`.  Use
    :func:`tensorize`, which performs those checks and memoizes models.
    """

    def __init__(self, base, uids: Sequence[str]) -> None:
        self.base = base
        self.processor = base.processor
        self.uids = tuple(uids)
        self.index = {uid: i for i, uid in enumerate(self.uids)}
        n = len(self.uids)

        cpu_domain = self.processor.cpu.domain
        gpu_domain = self.processor.gpu.domain
        self.cpu_levels = tuple(cpu_domain.levels)
        self.gpu_levels = tuple(gpu_domain.levels)
        n_cpu, n_gpu = len(self.cpu_levels), len(self.gpu_levels)
        self.n_gpu_levels = n_gpu
        # Exact-value level lookup; an off-grid frequency misses and the
        # wrapper delegates to the scalar predictor.
        self._cpu_level_idx = {f: i for i, f in enumerate(self.cpu_levels)}
        self._gpu_level_idx = {f: i for i, f in enumerate(self.gpu_levels)}

        # Settings in processor.settings() enumeration order: cpu-major.
        self.settings = list(self.processor.settings())
        S = len(self.settings)
        lc = np.repeat(np.arange(n_cpu), n_gpu)   # cpu level index of setting s
        lg = np.tile(np.arange(n_gpu), n_cpu)     # gpu level index of setting s

        # Per-(job, device) level vectors, straight from the profile table.
        table = base.table
        shapes = {DeviceKind.CPU: (n, n_cpu), DeviceKind.GPU: (n, n_gpu)}
        self.solo_time = {k: np.empty(s) for k, s in shapes.items()}
        self.solo_chip_power = {k: np.empty(s) for k, s in shapes.items()}
        self._demand = {k: np.empty(s) for k, s in shapes.items()}
        self._own_power = {k: np.empty(s) for k, s in shapes.items()}
        for kind in DeviceKind:
            for i, uid in enumerate(self.uids):
                prof = table._profiles[(uid, kind)]
                self.solo_time[kind][i] = prof.time_s
                self.solo_chip_power[kind][i] = prof.chip_power_w
                self._demand[kind][i] = prof.demand_gbps
                self._own_power[kind][i] = prof.own_power_w

        # Broadcast coordinates over the (cpu_job i, gpu_job j, setting s) cube.
        bw_c = np.broadcast_to(
            self._demand[DeviceKind.CPU][:, lc][:, None, :], (n, n, S)
        )
        bw_g = np.broadcast_to(
            self._demand[DeviceKind.GPU][:, lg][None, :, :], (n, n, S)
        )

        space = base.space
        self.deg_c, self.deg_g = _degradation_tensors(space, bw_c, bw_g, self.settings)

        time_c = self._demand[DeviceKind.CPU]  # placeholder to appease linters
        del time_c
        t_solo_c = self.solo_time[DeviceKind.CPU][:, lc][:, None, :]
        t_solo_g = self.solo_time[DeviceKind.GPU][:, lg][None, :, :]
        # Same binary-op order as CoRunPredictor.corun_times: t * (1.0 + d).
        self.t_corun_c = t_solo_c * (1.0 + self.deg_c)
        self.t_corun_g = t_solo_g * (1.0 + self.deg_g)

        # Same op order as CoRunPredictor.pair_power_w:
        # own_c + own_g + (base + per_gbps * (bw_c + bw_g)).
        uncore = self.processor.power.uncore
        own_c = self._own_power[DeviceKind.CPU][:, lc][:, None, :]
        own_g = self._own_power[DeviceKind.GPU][:, lg][None, :, :]
        self.pair_power = own_c + own_g + (
            uncore.base_w + uncore.per_gbps_w * (bw_c + bw_g)
        )

        self._cap_masks: dict[float, _CapMasks] = {}
        self._pair_tables: dict[tuple, object] = {}
        #: Name of the fleet node this model is scaled for (None = the
        #: calibrated machine itself); set on clones by :meth:`scaled`.
        self.node_name: str | None = None
        self._scaled_memo: dict[tuple, "TensorModel"] = {}

    # ------------------------------------------------------------------
    # Node scaling
    # ------------------------------------------------------------------
    def scaled(
        self,
        speed_scale: SpeedScale,
        power_scale: PowerScale,
        node_name: str | None = None,
    ) -> "TensorModel":
        """A clone of this model through one fleet node's scaling (memoized).

        Times divide by ``speed_scale`` and powers multiply by
        ``power_scale`` — elementwise over the already-exact tensors, the
        same two float operations :class:`~repro.core.fleet.NodePredictor`
        applies to each scalar answer, so scaled tensor and scaled scalar
        stay bitwise identical.  Degradations are ratios and are shared
        untouched; cap masks and pair tables start fresh (they depend on
        the scaled powers).
        """
        # repro: noqa REP003 -- exact identity gate: only a literal 1.0 scale shares the model
        if speed_scale == 1.0 and power_scale == 1.0:
            return self
        key = (speed_scale, power_scale, node_name)
        cached = self._scaled_memo.get(key)
        if cached is not None:
            return cached
        clone = object.__new__(TensorModel)
        clone.__dict__.update(self.__dict__)
        clone.solo_time = {
            k: v / speed_scale for k, v in self.solo_time.items()
        }
        clone.solo_chip_power = {
            k: v * power_scale for k, v in self.solo_chip_power.items()
        }
        clone.t_corun_c = self.t_corun_c / speed_scale
        clone.t_corun_g = self.t_corun_g / speed_scale
        clone.pair_power = self.pair_power * power_scale
        clone._cap_masks = {}
        clone._pair_tables = {}
        clone._scaled_memo = {}
        clone.node_name = node_name
        if len(self._scaled_memo) >= 16:
            self._scaled_memo.pop(next(iter(self._scaled_memo)))
        self._scaled_memo[key] = clone
        return clone

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def covers(self, uid: str) -> bool:
        return uid in self.index

    def setting_index(self, setting) -> int | None:
        """Index of ``setting`` in enumeration order, or ``None`` off-grid."""
        i = self._cpu_level_idx.get(setting.cpu_ghz)
        j = self._gpu_level_idx.get(setting.gpu_ghz)
        if i is None or j is None:
            return None
        return i * self.n_gpu_levels + j

    def level_index(self, kind: DeviceKind, f_ghz: Hertz) -> int | None:
        levels = (
            self._cpu_level_idx if kind is DeviceKind.CPU else self._gpu_level_idx
        )
        return levels.get(f_ghz)

    @property
    def nbytes(self) -> int:
        """Approximate precompute footprint (the five pair tensors)."""
        return int(
            self.deg_c.nbytes
            + self.deg_g.nbytes
            + self.t_corun_c.nbytes
            + self.t_corun_g.nbytes
            + self.pair_power.nbytes
        )

    # ------------------------------------------------------------------
    # Cap masks
    # ------------------------------------------------------------------
    def masks(self, cap_w: Watts) -> _CapMasks:
        """Feasibility masks and best-solo reductions for one cap (memoized)."""
        cached = self._cap_masks.get(cap_w)
        if cached is not None:
            return cached
        pair_ok = self.pair_power <= cap_w
        solo_ok, best_idx, best_time, best_valid = {}, {}, {}, {}
        for kind in DeviceKind:
            ok = self.solo_chip_power[kind] <= cap_w
            masked = np.where(ok, self.solo_time[kind], np.inf)
            idx = np.argmin(masked, axis=1)
            solo_ok[kind] = ok
            best_idx[kind] = idx
            best_time[kind] = masked[np.arange(masked.shape[0]), idx]
            best_valid[kind] = ok.any(axis=1)
        masks = _CapMasks(
            cap_w=cap_w,
            pair_ok=pair_ok,
            solo_ok=solo_ok,
            best_solo_idx=best_idx,
            best_solo_time=best_time,
            best_solo_valid=best_valid,
        )
        if len(self._cap_masks) >= 16:
            self._cap_masks.pop(next(iter(self._cap_masks)))
        self._cap_masks[cap_w] = masks
        return masks

    # ------------------------------------------------------------------
    # Predictor-equivalent queries (bitwise identical to the scalar chain)
    # ------------------------------------------------------------------
    def degradations(self, cpu_uid, gpu_uid, s: int) -> tuple[float, float]:
        i, j = self.index[cpu_uid], self.index[gpu_uid]
        return (float(self.deg_c[i, j, s]), float(self.deg_g[i, j, s]))

    def corun_times(self, cpu_uid, gpu_uid, s: int) -> tuple[Seconds, Seconds]:
        i, j = self.index[cpu_uid], self.index[gpu_uid]
        return (float(self.t_corun_c[i, j, s]), float(self.t_corun_g[i, j, s]))

    def pair_power_w(self, cpu_uid, gpu_uid, s: int) -> Watts:
        i, j = self.index[cpu_uid], self.index[gpu_uid]
        return float(self.pair_power[i, j, s])

    def feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w: Watts) -> tuple:
        i, j = self.index[cpu_uid], self.index[gpu_uid]
        flags = self.masks(cap_w).pair_ok[i, j]
        return tuple(self.settings[s] for s in np.flatnonzero(flags))

    def feasible_solo_levels(self, uid, kind: DeviceKind, cap_w: Watts) -> tuple:
        i = self.index[uid]
        flags = self.masks(cap_w).solo_ok[kind][i]
        levels = self.cpu_levels if kind is DeviceKind.CPU else self.gpu_levels
        return tuple(levels[int(k)] for k in np.flatnonzero(flags))

    def best_solo(
        self, uid, kind: DeviceKind, cap_w: Watts
    ) -> tuple[Hertz, Seconds]:
        i = self.index[uid]
        masks = self.masks(cap_w)
        if not masks.best_solo_valid[kind][i]:
            # Identical message/fields to CoRunPredictor.best_solo (or to
            # NodePredictor.best_solo when this model is node-scaled).
            if self.node_name is not None:
                raise InfeasibleCapError(
                    f"{uid} cannot run on {kind} under a {cap_w} W cap at "
                    f"any level on node {self.node_name}",
                    cap_w=cap_w,
                    jobs=(uid,),
                    node=self.node_name,
                )
            raise InfeasibleCapError(
                f"{uid} cannot run on {kind} under a {cap_w} W cap at any level",
                cap_w=cap_w,
                jobs=(uid,),
            )
        levels = self.cpu_levels if kind is DeviceKind.CPU else self.gpu_levels
        idx = int(masks.best_solo_idx[kind][i])
        return levels[idx], float(self.solo_time[kind][i, idx])

    def solo_time_at(self, uid, kind: DeviceKind, f_ghz: Hertz) -> Seconds | None:
        """Solo time at an exact level, or ``None`` when off-grid/unknown."""
        if uid not in self.index:
            return None
        li = self.level_index(kind, f_ghz)
        if li is None:
            return None
        return float(self.solo_time[kind][self.index[uid], li])

    def solo_power_at(self, uid, kind: DeviceKind, f_ghz: Hertz) -> Watts | None:
        if uid not in self.index:
            return None
        li = self.level_index(kind, f_ghz)
        if li is None:
            return None
        return float(self.solo_chip_power[kind][self.index[uid], li])


def _degradation_tensors(space, bw_c, bw_g, settings):
    """(deg_c, deg_g) over the job-pair/setting cube, exact to the space."""
    from repro.model.space import DegradationSpace, StagedDegradationSpace

    if type(space) is DegradationSpace:
        # Scalar: max(0.0, grid(bw_c, bw_g)); the setting is ignored.
        deg_c = np.maximum(_grid_eval(space.cpu_grid, bw_c, bw_g), 0.0)
        deg_g = np.maximum(_grid_eval(space.gpu_grid, bw_c, bw_g), 0.0)
        return deg_c, deg_g

    assert type(space) is StagedDegradationSpace
    # Scalar: sum(w_a * grid_a(bw_c, bw_g)) accumulated in anchor order from
    # int 0, then max(0.0, float(value)).  0.0 + x and in-order adds keep the
    # accumulation bitwise identical.
    S = bw_c.shape[2]
    weights = np.empty((len(space.anchors), S))
    for s, setting in enumerate(settings):
        weights[:, s] = space._weights(setting)
    acc_c = np.zeros(bw_c.shape)
    acc_g = np.zeros(bw_c.shape)
    for a, anchor in enumerate(space.anchors):
        w = weights[a][None, None, :]
        acc_c = acc_c + w * _grid_eval(anchor.cpu_grid, bw_c, bw_g)
        acc_g = acc_g + w * _grid_eval(anchor.gpu_grid, bw_c, bw_g)
    return np.maximum(acc_c, 0.0), np.maximum(acc_g, 0.0)


# ----------------------------------------------------------------------
# Model memo: one TensorModel per (base predictor, job set)
# ----------------------------------------------------------------------
_MODEL_MEMO: OrderedDict = OrderedDict()
_MODEL_MEMO_LIMIT = 8


def tensorize(predictor, uids: Sequence[str] | None = None):
    """Wrap ``predictor`` in a :class:`TensorBackedPredictor`, or ``None``.

    Returns ``None`` whenever exactness cannot be guaranteed by the tensor
    arithmetic — the base predictor is not *exactly* a
    :class:`~repro.model.predictor.CoRunPredictor` (oracle or noisy
    variants subclass or replace it), the space/table/power models are
    subclassed, requested uids are missing from the table, or the tensors
    would exceed :data:`MAX_TENSOR_ELEMENTS`.  Callers treat ``None`` as
    "use the scalar path".

    Models are memoized per (base predictor identity, uid set), so every
    :class:`~repro.core.context.SchedulingContext` built over the same
    model reuses one precompute.
    """
    from repro.hardware.power import UncorePowerModel
    from repro.model.interpolation import BilinearGrid
    from repro.model.predictor import CoRunPredictor
    from repro.model.profiler import ProfileTable
    from repro.model.space import DegradationSpace, StagedDegradationSpace

    inner = predictor
    while isinstance(inner, TensorBackedPredictor):
        inner = inner.inner
    base = inner.inner if isinstance(inner, CachingPredictor) else inner
    # A fleet node's scaled view is tensorizable: build (or reuse) the base
    # model, then clone it through the node's scaling.  Lazy import — perf
    # must not import core at module load.
    node = None
    node_predictor_type = _node_predictor_type()
    if node_predictor_type is not None and type(base) is node_predictor_type:
        node = base.node
        base = base.inner
        while isinstance(base, (TensorBackedPredictor, CachingPredictor)):
            base = base.inner
    if type(base) is not CoRunPredictor:
        return None
    if type(base.table) is not ProfileTable:
        return None
    if type(base.processor.power.uncore) is not UncorePowerModel:
        return None
    space = base.space
    if type(space) is DegradationSpace:
        grids = (space.cpu_grid, space.gpu_grid)
    elif type(space) is StagedDegradationSpace:
        if any(type(a) is not DegradationSpace for a in space.anchors):
            return None
        grids = tuple(g for a in space.anchors for g in (a.cpu_grid, a.gpu_grid))
    else:
        return None
    if any(type(g) is not BilinearGrid for g in grids):
        return None

    table_uids = tuple(sorted(base.table.uids))
    if uids is not None:
        need = tuple(sorted(set(uids)))
        if any(uid not in base.table for uid in need):
            return None
    else:
        need = table_uids
    n_settings = base.processor.n_settings

    def fits(us: tuple) -> bool:
        return len(us) * len(us) * n_settings <= MAX_TENSOR_ELEMENTS

    # Prefer a table-wide model (shared across job subsets); fall back to
    # the requested subset when the full table is too large.
    if fits(table_uids):
        chosen = table_uids
    elif fits(need):
        chosen = need
    else:
        return None

    key = (id(base), chosen)
    model = _MODEL_MEMO.get(key)
    if model is None or model.base is not base:
        model = TensorModel(base, chosen)
        while len(_MODEL_MEMO) >= _MODEL_MEMO_LIMIT:
            _MODEL_MEMO.popitem(last=False)
        _MODEL_MEMO[key] = model
    else:
        _MODEL_MEMO.move_to_end(key)
    if node is not None:
        model = model.scaled(node.speed_scale, node.power_scale, node.name)
    return TensorBackedPredictor(inner, model)


def _node_predictor_type():
    """The fleet NodePredictor class, or ``None`` before core is loaded.

    ``sys.modules`` lookup instead of an import: if nothing has touched
    ``repro.core.fleet`` yet, no predictor we receive can be a
    NodePredictor, and perf stays import-independent of core.
    """
    import sys

    mod = sys.modules.get("repro.core.fleet")
    return getattr(mod, "NodePredictor", None) if mod is not None else None


class TensorBackedPredictor:
    """Predictor facade answering hot queries from a :class:`TensorModel`.

    Uses the *same* cache keys as
    :class:`~repro.perf.evaluator.CachingPredictor` (sharing its cache when
    wrapping one), so hit/miss accounting and warm-cache behavior are
    indistinguishable from the scalar stack — only the cost of a miss
    changes.  Queries the tensor cannot answer exactly delegate to the
    wrapped predictor.
    """

    def __init__(self, inner, tensor: TensorModel) -> None:
        self.inner = inner
        self.tensor = tensor
        cache = getattr(inner, "cache", None)
        self.cache = cache if isinstance(cache, EvalCache) else ensure_cache(None)

    # -- delegated identity -------------------------------------------------
    @property
    def processor(self):
        return self.inner.processor

    @property
    def table(self):
        return self.inner.table

    @property
    def space(self):
        return self.inner.space

    def __getattr__(self, name: str):
        if name.startswith("_") or "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- tensor-served hot queries ------------------------------------------
    def _pair_s(self, cpu_uid, gpu_uid, setting) -> int | None:
        t = self.tensor
        if cpu_uid not in t.index or gpu_uid not in t.index:
            return None
        return t.setting_index(setting)

    def degradations(self, cpu_uid, gpu_uid, setting):
        s = self._pair_s(cpu_uid, gpu_uid, setting)
        if s is None:
            return self.inner.degradations(cpu_uid, gpu_uid, setting)
        return self.cache.get_or_compute(
            ("deg", cpu_uid, gpu_uid, setting),
            lambda: self.tensor.degradations(cpu_uid, gpu_uid, s),
        )

    def degradation(self, uid, kind, partner_uid, setting):
        if kind is DeviceKind.CPU:
            return self.degradations(uid, partner_uid, setting)[0]
        return self.degradations(partner_uid, uid, setting)[1]

    def corun_times(self, cpu_uid, gpu_uid, setting):
        s = self._pair_s(cpu_uid, gpu_uid, setting)
        if s is None:
            return self.inner.corun_times(cpu_uid, gpu_uid, setting)
        return self.cache.get_or_compute(
            ("corun", cpu_uid, gpu_uid, setting),
            lambda: self.tensor.corun_times(cpu_uid, gpu_uid, s),
        )

    def pair_power_w(self, cpu_uid, gpu_uid, setting):
        s = self._pair_s(cpu_uid, gpu_uid, setting)
        if s is None:
            return self.inner.pair_power_w(cpu_uid, gpu_uid, setting)
        return self.cache.get_or_compute(
            ("power", cpu_uid, gpu_uid, setting),
            lambda: self.tensor.pair_power_w(cpu_uid, gpu_uid, s),
        )

    def feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w):
        t = self.tensor
        if cpu_uid not in t.index or gpu_uid not in t.index:
            return self.inner.feasible_pair_settings(cpu_uid, gpu_uid, cap_w)
        feasible = self.cache.get_or_compute(
            ("feas", cpu_uid, gpu_uid, cap_w),
            lambda: t.feasible_pair_settings(cpu_uid, gpu_uid, cap_w),
        )
        return list(feasible)

    def require_feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w):
        feasible = self.feasible_pair_settings(cpu_uid, gpu_uid, cap_w)
        if not feasible:
            raise InfeasibleCapError(
                f"no frequency setting keeps pair ({cpu_uid}, {gpu_uid}) "
                f"within the {cap_w} W cap",
                cap_w=cap_w,
                jobs=(cpu_uid, gpu_uid),
            )
        return feasible

    def feasible_solo_levels(self, uid, kind, cap_w):
        if uid not in self.tensor.index:
            return self.inner.feasible_solo_levels(uid, kind, cap_w)
        feasible = self.cache.get_or_compute(
            ("feas_solo", uid, kind, cap_w),
            lambda: self.tensor.feasible_solo_levels(uid, kind, cap_w),
        )
        return list(feasible)

    def best_solo(self, uid, kind, cap_w):
        if uid not in self.tensor.index:
            return self.inner.best_solo(uid, kind, cap_w)
        return self.cache.get_or_compute(
            ("best_solo", uid, kind, cap_w),
            lambda: self.tensor.best_solo(uid, kind, cap_w),
        )

    # -- cheap lookups, uncached like CachingPredictor ----------------------
    def solo_time(self, uid, kind, f_ghz):
        t = self.tensor.solo_time_at(uid, kind, f_ghz)
        return t if t is not None else self.inner.solo_time(uid, kind, f_ghz)

    def solo_power_w(self, uid, kind, f_ghz):
        p = self.tensor.solo_power_at(uid, kind, f_ghz)
        return p if p is not None else self.inner.solo_power_w(uid, kind, f_ghz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TensorBackedPredictor({self.inner!r})"


class PairTables:
    """Governor-resolved replay constants for one (tensor, governor, cap).

    For every (cpu job, gpu job) pair: the governor's chosen setting index
    and the resulting co-run times and pair power; for every (job, device):
    the chosen solo level's time and chip power.  These are exactly the
    quantities the mean-field replay consumes, so a replay over the tables
    is bitwise identical to one over (governor, predictor) — with the
    single exception of infeasible combinations, which are flagged invalid
    here and re-raised through the scalar path for identical errors.
    """

    def __init__(self, tensor, cap_w, pair_valid, pair_t_c, pair_t_g,
                 pair_power, solo_valid, solo_t, solo_power):
        self.tensor = tensor
        self.cap_w = cap_w
        self.pair_valid = pair_valid
        self.pair_t_c = pair_t_c
        self.pair_t_g = pair_t_g
        self.pair_power = pair_power
        self.solo_valid = solo_valid      # kind -> (n,) bool
        self.solo_t = solo_t              # kind -> (n,) float
        self.solo_power = solo_power      # kind -> (n,) float
        self._packed = None

    @property
    def packed(self):
        """Channel-stacked copies of the tables for single-gather replay.

        ``(pair, solo_cpu, solo_gpu)``, every row laid out as
        ``[t_c, t_g, power, valid]`` — pair is ``(n, n, 4)``, the solos are
        ``(n, 4)`` with the device's solo time in its own slot and a
        harmless ``1.0`` in the idle device's slot (that channel is only
        ever read branch-masked).  One fancy gather per table per replay
        event instead of one per field; values are exact copies, validity
        is 1.0/0.0.
        """
        if self._packed is None:
            pair = np.empty(self.pair_t_c.shape + (4,))
            pair[..., 0] = self.pair_t_c
            pair[..., 1] = self.pair_t_g
            pair[..., 2] = self.pair_power
            pair[..., 3] = self.pair_valid
            solo = {}
            for kind in DeviceKind:
                s = np.ones((self.pair_t_c.shape[0], 4))
                s[:, 0 if kind is DeviceKind.CPU else 1] = self.solo_t[kind]
                s[:, 2] = self.solo_power[kind]
                s[:, 3] = self.solo_valid[kind]
                solo[kind] = s
            self._packed = (pair, solo[DeviceKind.CPU], solo[DeviceKind.GPU])
        return self._packed

    @classmethod
    def build(cls, tensor: TensorModel, governor, cap_w: float):
        """Tables for a recognized governor, or ``None``.

        Only the two stock governors are reducible: the exact types
        :class:`~repro.core.freqpolicy.ModelGovernor` (minimum summed
        co-run time / fastest feasible solo level) and
        :class:`~repro.core.objectives.EnergyAwareGovernor` (minimum pair
        energy or EDP).  A subclassed or custom governor returns ``None``
        and the evaluator stays on the scalar replay.
        """
        from repro.core.freqpolicy import ModelGovernor
        from repro.core.objectives import EnergyAwareGovernor, Objective

        if getattr(governor, "cap_w", None) != cap_w:
            return None
        memo_key = (
            type(governor).__qualname__,
            getattr(governor, "objective", None),
            cap_w,
        )
        cached = tensor._pair_tables.get(memo_key)
        if cached is not None:
            return cached
        masks = tensor.masks(cap_w)
        if type(governor) is ModelGovernor:
            # min over feasible settings of sum(corun_times) == t_c + t_g.
            pair_cost = tensor.t_corun_c + tensor.t_corun_g
            solo_cost = None
        elif type(governor) is EnergyAwareGovernor:
            # pair_energy_j: power * (t_c + t_g); EDP: energy * max(t_c, t_g).
            from repro.core.objectives import MAKESPAN_ENERGY_RHO

            energy = tensor.pair_power * (tensor.t_corun_c + tensor.t_corun_g)
            if governor.objective is Objective.ENERGY:
                pair_cost = energy
            elif governor.objective is Objective.MAKESPAN_ENERGY:
                # EnergyAwareGovernor._pair_cost order: max + RHO * energy.
                pair_cost = (
                    np.maximum(tensor.t_corun_c, tensor.t_corun_g)
                    + MAKESPAN_ENERGY_RHO * energy
                )
            else:
                pair_cost = energy * np.maximum(tensor.t_corun_c, tensor.t_corun_g)
            solo_cost = {}
            for kind in DeviceKind:
                # solo_energy_j: chip_power * solo_time; EDP multiplies by
                # solo_time again (EnergyAwareGovernor._solo_cost order).
                e = tensor.solo_chip_power[kind] * tensor.solo_time[kind]
                if governor.objective is Objective.ENERGY:
                    solo_cost[kind] = e
                elif governor.objective is Objective.MAKESPAN_ENERGY:
                    solo_cost[kind] = (
                        tensor.solo_time[kind] + MAKESPAN_ENERGY_RHO * e
                    )
                else:
                    solo_cost[kind] = e * tensor.solo_time[kind]
        else:
            return None

        with np.errstate(invalid="ignore"):
            masked = np.where(masks.pair_ok, pair_cost, np.inf)
        sidx = np.argmin(masked, axis=2)
        pair_valid = masks.pair_ok.any(axis=2)
        take = np.take_along_axis
        pair_t_c = take(tensor.t_corun_c, sidx[..., None], axis=2)[..., 0]
        pair_t_g = take(tensor.t_corun_g, sidx[..., None], axis=2)[..., 0]
        pair_power = take(tensor.pair_power, sidx[..., None], axis=2)[..., 0]

        solo_valid, solo_t, solo_power = {}, {}, {}
        n = len(tensor.uids)
        rows = np.arange(n)
        for kind in DeviceKind:
            if solo_cost is None:
                idx = masks.best_solo_idx[kind]
            else:
                with np.errstate(invalid="ignore"):
                    c = np.where(masks.solo_ok[kind], solo_cost[kind], np.inf)
                idx = np.argmin(c, axis=1)
            solo_valid[kind] = masks.best_solo_valid[kind]
            solo_t[kind] = tensor.solo_time[kind][rows, idx]
            solo_power[kind] = tensor.solo_chip_power[kind][rows, idx]
        tables = cls(
            tensor, cap_w, pair_valid, pair_t_c, pair_t_g, pair_power,
            solo_valid, solo_t, solo_power,
        )
        if len(tensor._pair_tables) >= 16:
            tensor._pair_tables.pop(next(iter(tensor._pair_tables)))
        tensor._pair_tables[memo_key] = tables
        return tables


class _ReplayTrace:
    """Loop-top snapshots of one indexed replay, for delta resumption.

    ``snaps`` holds ``(cp, gp, cur_c, frac_c, cur_g, frac_g, t, energy,
    flow)`` tuples, one per event-loop iteration from the initial state onward,
    where ``cp``/``gp`` count consumed queue entries and ``cur_*`` are job
    indices (-1 when idle).  A trace always records its replay's *complete*
    state history — resumed replays copy the validated prefix of the trace
    they resumed from — so :func:`_deepest_valid_snap` can see every pop
    decision when deciding how far a different schedule may fast-forward.
    """

    __slots__ = ("cpu", "gpu", "snaps")

    def __init__(self, cpu, gpu, snaps):
        self.cpu = cpu
        self.gpu = gpu
        self.snaps = snaps


def _common_prefix_len(a, b) -> int:
    n = min(len(a), len(b))
    k = 0
    while k < n and a[k] == b[k]:
        k += 1
    return k


def _deepest_valid_snap(trace: _ReplayTrace, cpu: tuple, gpu: tuple):
    """Deepest snapshot of ``trace`` that a replay of (cpu, gpu) passes
    through, as ``(index, snap)``; ``None`` if even the initial state
    diverges.

    A snapshot is valid while every pop decision made so far coincides
    between the traced replay and a fresh replay of the new queues: at each
    loop top an idle device pops when its queue has entries left, so the
    replays stay in lockstep only while (a) both pop the *same* job, or
    (b) neither has anything to pop.  The first loop top where the traced
    replay idled but the new queues still hold a job (or vice versa, or the
    jobs differ) is the last shared state — later snapshots belong to a
    different timeline.
    """
    cc = _common_prefix_len(trace.cpu, cpu)
    cg = _common_prefix_len(trace.gpu, gpu)
    lc_t, lg_t = len(trace.cpu), len(trace.gpu)
    lc_n, lg_n = len(cpu), len(gpu)
    best = None
    for k, snap in enumerate(trace.snaps):
        cp, gp, cur_c, _, cur_g, _, _, _, _ = snap
        if cp > cc or gp > cg:
            break
        best = (k, snap)
        diverge_c = cur_c < 0 and not (
            cp < cc or (cp >= lc_t and cp >= lc_n)
        )
        diverge_g = cur_g < 0 and not (
            gp < cg or (gp >= lg_t and gp >= lg_n)
        )
        if diverge_c or diverge_g:
            break
    return best


class BatchScheduleEvaluator(ScheduleEvaluator):
    """A :class:`ScheduleEvaluator` replaying over :class:`PairTables`.

    Drop-in compatible (same cache, same governor, same scores to the bit)
    but with three fast paths:

    * single-schedule scoring replays with O(1) table lookups per event;
    * repeated scoring of neighboring schedules (the refinement passes)
      resumes from snapshotted replay states — O(changed suffix) per move;
    * ``evaluate_all`` advances a whole population in one masked-NumPy
      lockstep sweep.

    Schedules the tables cannot replay (uncovered uids, infeasible
    pair/solo combinations, no tables for the governor) fall back to the
    scalar path, preserving exact error behavior.
    """

    backend = "tensor"

    def __init__(self, predictor, governor, cache=None, objective="makespan",
                 *, tensor: TensorModel, tables: PairTables | None):
        super().__init__(predictor, governor, cache, objective)
        self.tensor = tensor
        self.tables = tables
        self._traces: deque = deque(maxlen=8)
        self.batch_stats = {
            "delta_resumes": 0,
            "full_replays": 0,
            "batch_calls": 0,
            "batch_schedules": 0,
            "population_calls": 0,
            "population_schedules": 0,
            "scalar_fallbacks": 0,
        }

    # ------------------------------------------------------------------
    # Indexed (single-schedule) replay with delta resumption
    # ------------------------------------------------------------------
    def _indexable(self, schedule) -> bool:
        if self.tables is None:
            return False
        index = self.tensor.index
        return all(uid in index for uid in schedule.all_uids())

    def _try_indexed(self, schedule):
        """(makespan, energy, flow) via the tables, or ``None`` for fallback."""
        if not self._indexable(schedule):
            self.batch_stats["scalar_fallbacks"] += 1
            return None
        result = self._indexed_replay(schedule)
        if result is None:
            self.batch_stats["scalar_fallbacks"] += 1
        return result

    def _indexed_replay(self, schedule):
        tb = self.tables
        index = self.tensor.index
        cpu = tuple(index[j.uid] for j in schedule.cpu_queue)
        gpu = tuple(index[j.uid] for j in schedule.gpu_queue)

        # Resume from the deepest recorded state this schedule's replay is
        # guaranteed to pass through (deepest = largest elapsed time t).
        start = (0, 0, -1, 0.0, -1, 0.0, 0.0, 0.0, 0.0)
        prefix = None
        for trace in reversed(self._traces):
            got = _deepest_valid_snap(trace, cpu, gpu)
            if got is not None and got[1][6] > start[6]:
                start = got[1]
                prefix = trace.snaps[: got[0] + 1]
        if prefix is not None:
            self.batch_stats["delta_resumes"] += 1
        else:
            self.batch_stats["full_replays"] += 1

        cp, gp, cur_c, frac_c, cur_g, frac_g, t, energy, flow = start
        # Keep the full state history so later delta matches can see every
        # pop decision, including those made before the resume point.
        snaps = list(prefix) if prefix is not None else [start]
        solo_tail = schedule.solo_tail
        kinds = DeviceKind
        while True:
            if cur_c < 0 and cp < len(cpu):
                cur_c, frac_c = cpu[cp], 1.0
                cp += 1
            if cur_g < 0 and gp < len(gpu):
                cur_g, frac_g = gpu[gp], 1.0
                gp += 1
            if cur_c < 0 and cur_g < 0:
                break

            if cur_c >= 0 and cur_g >= 0:
                if not tb.pair_valid[cur_c, cur_g]:
                    return None
                t_c = float(tb.pair_t_c[cur_c, cur_g])
                t_g = float(tb.pair_t_g[cur_c, cur_g])
                power = float(tb.pair_power[cur_c, cur_g])
                dt = min(frac_c * t_c, frac_g * t_g)
            elif cur_c >= 0:
                if not tb.solo_valid[kinds.CPU][cur_c]:
                    return None
                t_c = float(tb.solo_t[kinds.CPU][cur_c])
                power = float(tb.solo_power[kinds.CPU][cur_c])
                dt = frac_c * t_c
            else:
                if not tb.solo_valid[kinds.GPU][cur_g]:
                    return None
                t_g = float(tb.solo_t[kinds.GPU][cur_g])
                power = float(tb.solo_power[kinds.GPU][cur_g])
                dt = frac_g * t_g
            energy += dt * power

            done = 0
            if cur_c >= 0:
                rem = frac_c - dt / t_c
                if rem <= _EPS:
                    cur_c, frac_c, done = -1, 0.0, done + 1
                else:
                    frac_c = rem
            if cur_g >= 0:
                rem = frac_g - dt / t_g
                if rem <= _EPS:
                    cur_g, frac_g, done = -1, 0.0, done + 1
                else:
                    frac_g = rem
            t += dt
            flow += done * t
            snaps.append((cp, gp, cur_c, frac_c, cur_g, frac_g, t, energy, flow))

        self._traces.append(_ReplayTrace(cpu, gpu, snaps))

        for job, kind in solo_tail:
            i = index[job.uid]
            if not tb.solo_valid[kind][i]:
                return None
            solo_s = float(tb.solo_t[kind][i])
            t += solo_s
            flow += t
            energy += solo_s * float(tb.solo_power[kind][i])
        return t, energy, flow

    # ------------------------------------------------------------------
    # ScheduleEvaluator overrides
    # ------------------------------------------------------------------
    def _compute(self, schedule) -> float:
        if self.objective == "makespan":
            result = self._try_indexed(schedule)
            if result is not None:
                return result[0]
            return super()._compute(schedule)
        # Energy/EDP route through metrics() below, which is table-backed.
        return self.metrics(schedule).score(self.objective)

    def metrics(self, schedule):
        def compute():
            result = self._try_indexed(schedule)
            if result is not None:
                from repro.core.schedule import PredictedMetrics

                return PredictedMetrics(
                    makespan_s=result[0], energy_j=result[1], flow_s=result[2]
                )
            from repro.core.schedule import predicted_metrics

            return predicted_metrics(schedule, self.predictor, self.governor)

        return self.cache.get_or_compute(self._metrics_key(schedule), compute)

    # ------------------------------------------------------------------
    # Batched lockstep evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(self, schedules: Sequence) -> list[float]:
        """Score a batch in one vectorized sweep (scores also memoized)."""
        return self.evaluate_all(schedules, executor=None)

    def evaluate_all(self, schedules: Sequence, executor=None) -> list[float]:
        from repro.perf.parallel import map_makespans, map_predicted_metrics

        pending: dict[tuple, object] = {}
        for s in schedules:
            key = self._key(s)
            if key not in self.cache and key not in pending:
                pending[key] = s
        if pending:
            todo = list(pending.values())
            covered = [s for s in todo if self._indexable(s)]
            rest = [s for s in todo if not self._indexable(s)]
            if covered:
                batch = self._batch_replay(covered)
                if batch is None:
                    # An infeasible schedule is in the batch: re-run the
                    # whole todo set through the scalar path so the first
                    # infeasible schedule (in todo order) raises exactly as
                    # a serial evaluation would.
                    return super().evaluate_all(schedules, executor)
                from repro.core.schedule import PredictedMetrics

                for s, (mk, en, fl) in zip(covered, batch):
                    if self.objective == "makespan":
                        self.prime(s, mk)
                    else:
                        m = PredictedMetrics(makespan_s=mk, energy_j=en, flow_s=fl)
                        self.cache.prime(self._metrics_key(s), m)
                        self.prime(s, m.score(self.objective))
            if rest:
                if self.objective == "makespan":
                    values = map_makespans(
                        executor, self.predictor, self.governor, rest
                    )
                    for s, v in zip(rest, values):
                        self.prime(s, v)
                else:
                    metrics = map_predicted_metrics(
                        executor, self.predictor, self.governor, rest
                    )
                    for s, m in zip(rest, metrics):
                        self.cache.prime(self._metrics_key(s), m)
                        self.prime(s, m.score(self.objective))
            # Fan-out/batch results count as evaluations, not hits.
            self.cache.stats.misses += len(todo)
            self.cache.stats.hits -= len(todo)
        return [self(s) for s in schedules]

    def _batch_replay(self, schedules):
        """Lockstep replay of many schedules; ``None`` if any is infeasible.

        Every schedule's arithmetic follows the exact scalar event
        sequence; ``np.where`` freezes finished lanes bitwise, so lane k's
        result equals an isolated replay of schedule k.
        """
        self.batch_stats["batch_calls"] += 1
        self.batch_stats["batch_schedules"] += len(schedules)
        if len(schedules) <= 4:
            out = []
            for s in schedules:
                result = self._indexed_replay(s)
                if result is None:
                    return None
                out.append(result)
            return out

        index = self.tensor.index
        K = len(schedules)
        cpu_lists = [[index[j.uid] for j in s.cpu_queue] for s in schedules]
        gpu_lists = [[index[j.uid] for j in s.gpu_queue] for s in schedules]
        len_c = np.array([len(q) for q in cpu_lists])
        len_g = np.array([len(q) for q in gpu_lists])
        wc = max(1, int(len_c.max()) if K else 1)
        wg = max(1, int(len_g.max()) if K else 1)
        Qc = np.full((K, wc), -1, dtype=np.int64)
        Qg = np.full((K, wg), -1, dtype=np.int64)
        for k, q in enumerate(cpu_lists):
            Qc[k, : len(q)] = q
        for k, q in enumerate(gpu_lists):
            Qg[k, : len(q)] = q

        t, energy, flow, bad = self._replay_matrices(Qc, len_c, Qg, len_g)
        if bad.any():
            return None
        tb = self.tables
        out = []
        for k, s in enumerate(schedules):
            tk = float(t[k])
            ek = float(energy[k])
            fk = float(flow[k])
            for job, kind in s.solo_tail:
                i = index[job.uid]
                if not tb.solo_valid[kind][i]:
                    return None
                solo_s = float(tb.solo_t[kind][i])
                tk += solo_s
                fk += tk
                ek += solo_s * float(tb.solo_power[kind][i])
            out.append((tk, ek, fk))
        return out

    def _replay_matrices(self, Qc, len_c, Qg, len_g):
        """Lockstep replay over padded queue-index matrices.

        ``Qc``/``Qg`` are ``(K, w)`` int matrices of tensor job indices
        (padding value irrelevant past each lane's length); ``len_c`` /
        ``len_g`` the per-lane queue lengths.  Returns per-lane
        ``(t, energy, flow, bad)`` arrays, where ``bad`` flags lanes that
        hit an infeasible pair or solo combination (their other outputs
        are meaningless).  Lane arithmetic is bitwise identical to
        :meth:`_indexed_replay` of the same queues.
        """
        # The loop body is dominated by numpy dispatch overhead on small
        # per-event arrays, so the tables are read through channel-stacked
        # copies (one fancy gather per table instead of one per field) and
        # frozen lanes are preserved with masked in-place ufuncs instead of
        # fresh ``np.where`` allocations.  Both are bitwise-neutral: the
        # packed tables hold exact copies, and ``out=..., where=mask``
        # writes the identical values a masked ``np.where`` would keep.
        pair_pack, solo_c_pack, solo_g_pack = self.tables.packed
        K = Qc.shape[0]
        pc = np.zeros(K, dtype=np.int64)
        pg = np.zeros(K, dtype=np.int64)
        cur_c = np.full(K, -1, dtype=np.int64)
        cur_g = np.full(K, -1, dtype=np.int64)
        frac_c = np.zeros(K)
        frac_g = np.zeros(K)
        t = np.zeros(K)
        energy = np.zeros(K)
        flow = np.zeros(K)
        active = np.ones(K, dtype=bool)
        bad = np.zeros(K, dtype=bool)

        with np.errstate(invalid="ignore", divide="ignore"):
            while True:
                need_c = active & (cur_c < 0) & (pc < len_c)
                if need_c.any():
                    rows = np.nonzero(need_c)[0]
                    cur_c[rows] = Qc[rows, pc[rows]]
                    frac_c[rows] = 1.0
                    pc[rows] += 1
                need_g = active & (cur_g < 0) & (pg < len_g)
                if need_g.any():
                    rows = np.nonzero(need_g)[0]
                    cur_g[rows] = Qg[rows, pg[rows]]
                    frac_g[rows] = 1.0
                    pg[rows] += 1
                mask_c = cur_c >= 0
                mask_g = cur_g >= 0
                active &= mask_c | mask_g
                if not active.any():
                    break

                ic = np.maximum(cur_c, 0)
                ig = np.maximum(cur_g, 0)
                run_c = active & mask_c
                run_g = active & mask_g
                pair = run_c & run_g
                only_c = run_c ^ pair
                # One gather per table; rows for lanes outside a branch are
                # garbage but every read below is branch-masked.
                row = np.where(
                    pair[:, None],
                    pair_pack[ic, ig],
                    np.where(only_c[:, None], solo_c_pack[ic], solo_g_pack[ig]),
                )
                newbad = active & (row[:, 3] == 0.0)
                if newbad.any():
                    bad |= newbad
                    active &= ~newbad
                    if not active.any():
                        break
                    keep = ~newbad
                    pair &= keep
                    only_c &= keep
                    run_c &= active
                    run_g &= active

                t_c = row[:, 0]
                t_g = row[:, 1]
                dt_c = frac_c * t_c
                dt_g = frac_g * t_g
                dt = np.where(
                    pair, np.minimum(dt_c, dt_g), np.where(only_c, dt_c, dt_g)
                )
                np.add(energy, dt * row[:, 2], out=energy, where=active)

                rem_c = frac_c - dt / t_c
                done_c = run_c & (rem_c <= _EPS)
                np.copyto(frac_c, rem_c, where=run_c)
                np.copyto(frac_c, 0.0, where=done_c)
                np.copyto(cur_c, -1, where=done_c)
                rem_g = frac_g - dt / t_g
                done_g = run_g & (rem_g <= _EPS)
                np.copyto(frac_g, rem_g, where=run_g)
                np.copyto(frac_g, 0.0, where=done_g)
                np.copyto(cur_g, -1, where=done_g)
                np.add(t, dt, out=t, where=active)
                # Same op order as the scalar replay: flow += done * t,
                # with done counting completions this event (0, 1 or 2).
                ndone = done_c.astype(np.int64) + done_g.astype(np.int64)
                flow += ndone * t

        return t, energy, flow, bad

    # ------------------------------------------------------------------
    # Population scoring (index matrices in, objective scores out)
    # ------------------------------------------------------------------
    def score_population(self, Qc, len_c, Qg, len_g, *, solo_tail=()):
        """Score a whole population of queue-index matrices in one sweep.

        The population path of :mod:`repro.perf.population`: callers hand
        over ``(K, w)`` matrices of tensor job indices directly (no
        :class:`~repro.core.schedule.CoSchedule` objects, no cache keys),
        and every lane is replayed in lockstep.  ``solo_tail`` is a shared
        tail — a sequence of ``(tensor_index, DeviceKind)`` pairs appended
        to *every* lane, the way refinement candidates share their input
        schedule's tail.

        Returns ``(scores, makespan, energy, flow, bad)``: per-lane
        objective scores (``np.inf`` on bad lanes) plus the raw metric
        arrays and the infeasibility mask.  Feasible lanes are bitwise
        identical to :meth:`_indexed_replay` of the same queues, so a
        population score can always be cross-checked against the
        per-schedule path.
        """
        if self.tables is None:
            raise ValueError(
                "score_population needs pair tables; this evaluator was "
                "built without them (fall back to evaluate_all)"
            )
        K = int(Qc.shape[0])
        self.batch_stats["batch_calls"] += 1
        self.batch_stats["batch_schedules"] += K
        self.batch_stats["population_calls"] += 1
        self.batch_stats["population_schedules"] += K
        t, energy, flow, bad = self._replay_matrices(Qc, len_c, Qg, len_g)
        tb = self.tables
        for i, kind in solo_tail:
            if not tb.solo_valid[kind][i]:
                bad = np.ones_like(bad)
                break
            # Same op order as the scalar tail: t += solo; flow += t;
            # energy += solo * power — applied to every lane at once.
            solo_s = float(tb.solo_t[kind][i])
            t = t + solo_s
            flow = flow + t
            energy = energy + solo_s * float(tb.solo_power[kind][i])
        scores = self._objective_scores(t, energy, flow)
        scores = np.where(bad, np.inf, scores)
        return scores, t, energy, flow, bad

    def _objective_scores(self, makespan, energy, flow):
        """Vectorized :meth:`PredictedMetrics.score` over metric arrays."""
        if self.objective == "makespan":
            return makespan
        if self.objective == "energy":
            return energy
        if self.objective == "edp":
            return energy * makespan
        if self.objective == "flow_time":
            return flow
        # makespan_energy — lazy core import, as everywhere in this module.
        from repro.core.objectives import MAKESPAN_ENERGY_RHO

        return makespan + MAKESPAN_ENERGY_RHO * energy

    def snapshot(self) -> dict[str, float]:
        snap = dict(self.cache.snapshot())
        snap.update({f"tensor_{k}": float(v) for k, v in self.batch_stats.items()})
        return snap
