"""Vectorized population kernels: whole GA generations as index matrices.

PR 5 vectorized schedule *evaluation*; the search loops above it still
mutated one genome at a time in Python and paid a ``CoSchedule`` build, a
cache-key hash, and a per-schedule replay call for every candidate.  This
module represents an entire population — or a refinement neighborhood —
as NumPy index matrices instead:

* placement as a ``(P, n)`` bool matrix (``True`` -> CPU queue),
* priority as a ``(P, n)`` int64 matrix of row-wise permutations,

and implements every genetic operator (crossover, mutation, tournament
selection), the decode step, and full-neighborhood generation as batched
array ops over one :class:`numpy.random.Generator` stream.  A generation
is decoded with :func:`decode_queues` and scored by a single
``BatchScheduleEvaluator.score_population`` lockstep replay — one call per
generation, not P.

Layering: :mod:`repro.perf` must not import :mod:`repro.core`, so the
kernels speak arrays and a scoring callback only.  ``core/genetic.py`` and
``core/refine.py`` own the dispatch — they translate jobs to tensor
indices and back, and keep the scalar operators as the equivalence
referee.  Given the same random draws, every operator here produces
exactly the genome its scalar counterpart produces (property-tested in
``tests/perf/test_population_ops.py``); the batched loop then merely
consumes its draws from one vectorized stream instead of genome-by-genome.

Memory bound: the loop holds O(P x n) int64/bool matrices (population,
children, decoded queues) — for the defaults (P=64, n=16) a few hundred
kilobytes, and still only ~8 MB at P=1024, n=512.  The decoded queue
matrices passed to ``score_population`` dominate and are released after
each generation.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

#: Safety bound on steepest-descent refinement rounds.  Each accepted move
#: improves the score by at least the move class's minimum relative gain,
#: so convergence is geometric and real workloads stop after a handful of
#: rounds; the cap only guards against degenerate thresholds.
MAX_REFINE_ROUNDS = 64


# ----------------------------------------------------------------------
# Population construction and genetic operators
# ----------------------------------------------------------------------
def random_population(
    rng: np.random.Generator, size: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """A fresh random population: ``(placement, priority)`` matrices.

    Row distributions match the scalar ``_random_genome`` exactly: each
    placement bit is an independent fair coin, each priority row an
    independent uniform permutation of ``0..n-1``.
    """
    placement = rng.random((size, n)) < 0.5
    priority = rng.permuted(
        np.tile(np.arange(n, dtype=np.int64), (size, 1)), axis=1
    )
    return placement, priority


def order_crossover(
    a_placement: np.ndarray,
    a_priority: np.ndarray,
    b_placement: np.ndarray,
    b_priority: np.ndarray,
    mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched order crossover; row r crosses parents ``a[r]`` and ``b[r]``.

    ``mask`` is the per-gene placement coin (``True`` -> inherit from a).
    Priority rows must be permutations (every producer in this module
    keeps them so).  Given the same mask, each child row is *identical* to
    the scalar ``_crossover``: the scalar keeps a's relative order for the
    indices holding a's ``n // 2`` smallest priorities, then fills the rest
    in b's order — which is exactly the rank of the composite sort key
    ``a_priority`` (picked, all < n//2) vs ``n + b_priority`` (unpicked,
    all >= n), ranked per row by a stable double argsort.
    """
    n = a_priority.shape[1]
    placement = np.where(mask, a_placement, b_placement)
    key = np.where(a_priority < n // 2, a_priority, n + b_priority)
    order = np.argsort(key, axis=1, kind="stable")
    priority = np.empty_like(a_priority)
    np.put_along_axis(
        priority,
        order,
        np.broadcast_to(np.arange(n, dtype=np.int64), order.shape),
        axis=1,
    )
    return placement, priority


def mutation_draws(
    rng: np.random.Generator, size: int, n: int, rate: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The scalar mutation's random decisions for ``size`` genomes at once.

    Returns ``(flip_rows, flip_cols, swap_rows, swap_i, swap_j)``.  The
    swap pair ``(i, j)`` is drawn as ``i`` uniform and ``j`` a uniform
    non-``i`` offset — the same uniform-over-ordered-distinct-pairs law as
    the scalar ``rng.choice(n, size=2, replace=False)``.  With ``n < 2``
    the scalar path never draws a swap; here the swap gate is simply
    always closed.
    """
    flip_rows = rng.random(size) < rate
    flip_cols = rng.integers(n, size=size)
    if n >= 2:
        swap_rows = rng.random(size) < rate
        swap_i = rng.integers(n, size=size)
        swap_j = (swap_i + 1 + rng.integers(n - 1, size=size)) % n
    else:
        swap_rows = np.zeros(size, dtype=bool)
        swap_i = np.zeros(size, dtype=np.int64)
        swap_j = swap_i
    return flip_rows, flip_cols, swap_rows, swap_i, swap_j


def mutate_population(
    placement: np.ndarray,
    priority: np.ndarray,
    flip_rows: np.ndarray,
    flip_cols: np.ndarray,
    swap_rows: np.ndarray,
    swap_i: np.ndarray,
    swap_j: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply batched point mutations (copies; parents stay untouched).

    Rows flagged in ``flip_rows`` flip one placement bit (``flip_cols``);
    rows flagged in ``swap_rows`` swap one priority pair — exactly the two
    moves of the scalar ``_mutate``.
    """
    placement = placement.copy()
    priority = priority.copy()
    rows = np.nonzero(flip_rows)[0]
    placement[rows, flip_cols[rows]] ^= True
    rows = np.nonzero(swap_rows)[0]
    i, j = swap_i[rows], swap_j[rows]
    pi = priority[rows, i].copy()
    priority[rows, i] = priority[rows, j]
    priority[rows, j] = pi
    return placement, priority


def tournament_picks(
    rng: np.random.Generator, size: int, population: int, k: int
) -> np.ndarray:
    """``size`` tournament entry lists: ``(size, k)`` indices, no repeats.

    Drawn as the first ``k`` columns of per-row random-key argsorts — a
    uniformly random ordered k-subset per row, the same law as the scalar
    ``rng.choice(population, size=k, replace=False)``.
    """
    keys = rng.random((size, population))
    return np.argsort(keys, axis=1, kind="stable")[:, :k]


def tournament_winners(fitness: np.ndarray, picks: np.ndarray) -> np.ndarray:
    """Row-wise tournament winners: the pick minimizing ``fitness``.

    Ties resolve to the earliest pick in the row, like Python's ``min``
    over the scalar pick sequence.
    """
    entries = fitness[picks]
    col = np.argmin(entries, axis=1)
    return picks[np.arange(picks.shape[0]), col]


# ----------------------------------------------------------------------
# Decoding: genomes -> padded queue-index matrices
# ----------------------------------------------------------------------
def decode_queues(
    placement: np.ndarray, priority: np.ndarray, job_index: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decode a population into padded queue matrices of tensor indices.

    Mirrors the scalar ``_decode`` row for row: jobs sorted by priority
    (stable), split by placement into the CPU and GPU queues.
    ``job_index`` maps genome gene position -> tensor job index.  Returns
    ``(Qc, len_c, Qg, len_g)`` with both queue matrices ``(P, n)`` wide
    and ``-1``-padded past each lane's length.
    """
    size, n = priority.shape
    order = np.argsort(priority, axis=1, kind="stable")
    placed = np.take_along_axis(placement, order, axis=1)
    jobs = job_index[order]
    len_c = placed.sum(axis=1, dtype=np.int64)
    len_g = n - len_c
    # Scatter each job to its position within its queue: the cumulative
    # count of same-queue jobs up to and including it, minus one.
    pos_c = np.cumsum(placed, axis=1) - 1
    pos_g = np.cumsum(~placed, axis=1) - 1
    Qc = np.full((size, n), -1, dtype=np.int64)
    Qg = np.full((size, n), -1, dtype=np.int64)
    rows, cols = np.nonzero(placed)
    Qc[rows, pos_c[rows, cols]] = jobs[rows, cols]
    rows, cols = np.nonzero(~placed)
    Qg[rows, pos_g[rows, cols]] = jobs[rows, cols]
    return Qc, len_c, Qg, len_g


# ----------------------------------------------------------------------
# The vectorized GA loop
# ----------------------------------------------------------------------
def evolve_population(
    score: Callable[[np.ndarray, np.ndarray], np.ndarray],
    n: int,
    config,
    rng: np.random.Generator,
    *,
    seed_placement: np.ndarray | None = None,
    seed_priority: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """The GA generation loop as pure array ops on one Generator stream.

    ``score(placement, priority) -> (P,)`` scores a whole generation at
    once (one lockstep tensor replay); ``config`` is duck-typed to
    :class:`~repro.core.genetic.GaConfig` (population, generations, elite,
    crossover_rate, mutation_rate).  The loop mirrors the scalar
    ``GeneticScheduler.evolve`` structurally — stable fitness sort, elite
    carry-over, two tournaments per child, rate-gated crossover, then
    mutation — with every step batched over the P - elite children.

    The per-generation draw shapes depend only on ``(P, n, elite)``, so a
    longer run consumes the identical stream prefix as a shorter one: with
    any elitism, more generations can never return a worse best score.

    Returns ``(placement, priority, score)`` of the best final genome.
    """
    size = config.population
    n_elite = config.elite
    n_child = size - n_elite
    k = min(3, size)

    placement, priority = random_population(rng, size, n)
    if seed_placement is not None:
        placement[0] = seed_placement
        priority[0] = seed_priority

    for _ in range(config.generations):
        fitness = score(placement, priority)
        order = np.argsort(fitness, kind="stable")
        placement = placement[order]
        priority = priority[order]
        fitness = fitness[order]

        picks = tournament_picks(rng, 2 * n_child, size, k)
        parents = tournament_winners(fitness, picks)
        a_idx, b_idx = parents[0::2], parents[1::2]
        do_cross = rng.random(n_child) < config.crossover_rate
        mask = rng.random((n_child, n)) < 0.5
        cross_place, cross_prio = order_crossover(
            placement[a_idx], priority[a_idx],
            placement[b_idx], priority[b_idx], mask,
        )
        child_place = np.where(do_cross[:, None], cross_place, placement[a_idx])
        child_prio = np.where(do_cross[:, None], cross_prio, priority[a_idx])
        child_place, child_prio = mutate_population(
            child_place, child_prio,
            *mutation_draws(rng, n_child, n, config.mutation_rate),
        )
        placement = np.concatenate([placement[:n_elite], child_place])
        priority = np.concatenate([priority[:n_elite], child_prio])

    fitness = score(placement, priority)
    best = int(np.argmin(fitness))
    return placement[best], priority[best], float(fitness[best])


# ----------------------------------------------------------------------
# Full-neighborhood refinement
# ----------------------------------------------------------------------
def swap_neighborhood(
    cpu: np.ndarray,
    gpu: np.ndarray,
    adjacent_min_gain: float,
    random_min_gain: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Every swap the scalar refinement passes sample from, as matrices.

    For queues ``cpu``/``gpu`` of tensor indices, enumerates — via array
    ops, one candidate per row — all adjacent swaps in each queue (gated
    by ``adjacent_min_gain``), all intra-queue pairs, and all cross-queue
    single-job exchanges (both gated by ``random_min_gain``).  Queue
    lengths are invariant under every move, so the result is a uniform
    ``(K, len)`` matrix per side plus the per-candidate acceptance
    threshold: ``(Qc, Qg, min_gain)``.
    """
    nc, ng = len(cpu), len(gpu)
    blocks_c: list[np.ndarray] = []
    blocks_g: list[np.ndarray] = []
    gains: list[np.ndarray] = []

    def _intra(queue, pairs_i, pairs_j, gain):
        m = len(pairs_i)
        if m == 0:
            return None
        rows = np.arange(m)
        block = np.tile(queue, (m, 1))
        block[rows, pairs_i] = queue[pairs_j]
        block[rows, pairs_j] = queue[pairs_i]
        return block, np.full(m, gain)

    for queue, other, flip in ((cpu, gpu, False), (gpu, cpu, True)):
        n = len(queue)
        moves = (
            (np.arange(n - 1), np.arange(1, n), adjacent_min_gain),
            (*np.triu_indices(n, 1), random_min_gain),
        )
        for pairs_i, pairs_j, gain in moves:
            got = _intra(queue, pairs_i, pairs_j, gain)
            if got is None:
                continue
            block, g = got
            fixed = np.tile(other, (block.shape[0], 1))
            blocks_c.append(fixed if flip else block)
            blocks_g.append(block if flip else fixed)
            gains.append(g)

    if nc and ng:
        ii, jj = np.meshgrid(np.arange(nc), np.arange(ng), indexing="ij")
        ii, jj = ii.ravel(), jj.ravel()
        m = len(ii)
        rows = np.arange(m)
        block_c = np.tile(cpu, (m, 1))
        block_g = np.tile(gpu, (m, 1))
        block_c[rows, ii] = gpu[jj]
        block_g[rows, jj] = cpu[ii]
        blocks_c.append(block_c)
        blocks_g.append(block_g)
        gains.append(np.full(m, random_min_gain))

    if not blocks_c:
        empty = np.empty((0, max(1, nc)), dtype=np.int64)
        empty_g = np.empty((0, max(1, ng)), dtype=np.int64)
        return empty, empty_g, np.empty(0)
    return np.vstack(blocks_c), np.vstack(blocks_g), np.concatenate(gains)


def refine_queues(
    score_queues: Callable[..., np.ndarray],
    cpu: np.ndarray,
    gpu: np.ndarray,
    best_score: float,
    *,
    adjacent_min_gain: float,
    random_min_gain: float,
    max_rounds: int = MAX_REFINE_ROUNDS,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Steepest-descent refinement over the full swap neighborhood.

    ``score_queues(Qc, len_c, Qg, len_g) -> (K,)`` scores every candidate
    in one lockstep replay, returning ``np.inf`` for infeasible lanes
    (which are thereby skipped, never accepted).  Each round scores the
    complete neighborhood of the incumbent, accepts the best candidate
    beating its move class's minimum relative gain, and repeats until no
    move qualifies.  Deterministic — no RNG, unlike the scalar sampling
    passes — and guaranteed never to worsen the score.
    """
    cpu = np.asarray(cpu, dtype=np.int64)
    gpu = np.asarray(gpu, dtype=np.int64)
    for _ in range(max_rounds):
        Qc, Qg, min_gain = swap_neighborhood(
            cpu, gpu, adjacent_min_gain, random_min_gain
        )
        if Qc.shape[0] == 0:
            break
        K = Qc.shape[0]
        len_c = np.full(K, len(cpu), dtype=np.int64)
        len_g = np.full(K, len(gpu), dtype=np.int64)
        scores = score_queues(Qc, len_c, Qg, len_g)
        accepted = scores < best_score * (1.0 - min_gain)
        if not accepted.any():
            break
        pick = int(np.argmin(np.where(accepted, scores, np.inf)))
        cpu, gpu = Qc[pick], Qg[pick]
        best_score = float(scores[pick])
    return cpu, gpu, best_score
