"""Memoized evaluation primitives shared by every scheduler.

:class:`CachingPredictor` wraps any predictor-shaped object (the
interpolation :class:`~repro.model.predictor.CoRunPredictor`, the oracle,
the robustness studies' noisy variants) and memoizes its pure hot queries —
degradations, co-run times, pair powers, cap feasibility — in a shared
:class:`~repro.perf.cache.EvalCache`.  HCS's greedy pairing, the HCS+
refinement passes, the GA fitness loop, A*, and brute force all re-ask the
same (pair, setting) questions thousands of times; with one shared cache
they each pay only once.

:class:`ScheduleEvaluator` memoizes whole predicted makespans keyed by the
schedule's uid signature — the quantity HCS+ refinement, GA fitness, and
brute force minimize.

Both wrappers are exact: a memoized answer is byte-identical to the wrapped
computation, so cached and uncached searches produce identical schedules.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.units import Hertz, Seconds, Watts
from repro.perf.cache import EvalCache, ensure_cache


class CachingPredictor:
    """A drop-in predictor wrapper with content-keyed memoization.

    Delegates attribute access (``processor``, ``table``, ``space``, any
    extra methods) to the wrapped predictor, so it is substitutable wherever
    a :class:`CoRunPredictor` is expected.
    """

    def __init__(self, predictor, cache: EvalCache | None = None) -> None:
        self.inner = predictor
        self.cache = ensure_cache(cache)

    # -- delegated identity -------------------------------------------------
    @property
    def processor(self):
        return self.inner.processor

    @property
    def table(self):
        return self.inner.table

    @property
    def space(self):
        return self.inner.space

    def __getattr__(self, name: str):
        if name.startswith("_") or "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- memoized hot queries ----------------------------------------------
    def degradations(self, cpu_uid, gpu_uid, setting):
        return self.cache.get_or_compute(
            ("deg", cpu_uid, gpu_uid, setting),
            lambda: self.inner.degradations(cpu_uid, gpu_uid, setting),
        )

    def degradation(self, uid, kind, partner_uid, setting):
        from repro.hardware.device import DeviceKind

        if kind is DeviceKind.CPU:
            return self.degradations(uid, partner_uid, setting)[0]
        return self.degradations(partner_uid, uid, setting)[1]

    def corun_times(
        self, cpu_uid, gpu_uid, setting
    ) -> tuple[Seconds, Seconds]:
        return self.cache.get_or_compute(
            ("corun", cpu_uid, gpu_uid, setting),
            lambda: self.inner.corun_times(cpu_uid, gpu_uid, setting),
        )

    def pair_power_w(self, cpu_uid, gpu_uid, setting) -> Watts:
        return self.cache.get_or_compute(
            ("power", cpu_uid, gpu_uid, setting),
            lambda: self.inner.pair_power_w(cpu_uid, gpu_uid, setting),
        )

    def feasible_pair_settings(self, cpu_uid, gpu_uid, cap_w: Watts):
        feasible = self.cache.get_or_compute(
            ("feas", cpu_uid, gpu_uid, cap_w),
            lambda: tuple(
                self.inner.feasible_pair_settings(cpu_uid, gpu_uid, cap_w)
            ),
        )
        return list(feasible)

    def feasible_solo_levels(self, uid, kind, cap_w: Watts):
        feasible = self.cache.get_or_compute(
            ("feas_solo", uid, kind, cap_w),
            lambda: tuple(self.inner.feasible_solo_levels(uid, kind, cap_w)),
        )
        return list(feasible)

    def best_solo(self, uid, kind, cap_w: Watts) -> tuple[Hertz, Seconds]:
        return self.cache.get_or_compute(
            ("best_solo", uid, kind, cap_w),
            lambda: self.inner.best_solo(uid, kind, cap_w),
        )

    # -- cheap table lookups, delegated uncached ----------------------------
    def solo_time(self, uid, kind, f_ghz: Hertz) -> Seconds:
        return self.inner.solo_time(uid, kind, f_ghz)

    def solo_power_w(self, uid, kind, f_ghz: Hertz) -> Watts:
        return self.inner.solo_power_w(uid, kind, f_ghz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachingPredictor({self.inner!r})"


#: Objective tags a ScheduleEvaluator accepts (duck-typed string values of
#: ``repro.core.objectives.Objective`` — perf must not import core at load
#: time).
OBJECTIVE_TAGS = ("makespan", "energy", "edp", "flow_time", "makespan_energy")


def schedule_key(
    schedule, objective: str = "makespan", backend: str = "scalar"
) -> tuple:
    """The memoization signature of a co-schedule (uids + placements).

    The leading tags carry the objective and the evaluation backend
    (``"scalar"`` or ``"tensor"``), so scores for different objectives —
    or computed by different backends in one process — can never collide
    in a shared cache.
    """
    return (
        objective,
        backend,
        tuple(j.uid for j in schedule.cpu_queue),
        tuple(j.uid for j in schedule.gpu_queue),
        tuple((j.uid, kind) for j, kind in schedule.solo_tail),
    )


class ScheduleEvaluator:
    """Memoized predicted-score evaluation bound to one (predictor, governor).

    The callable interface makes it a drop-in ``evaluate`` function for the
    search-based schedulers: it returns the predicted score under
    ``objective`` (``"makespan"`` by default, or ``"energy"`` / ``"edp"``).
    Cache keys are tagged with the objective, so one shared
    :class:`~repro.perf.cache.EvalCache` can serve evaluators with
    different objectives without ever leaking a score across them.
    ``contains``/``prime`` support batch fan-out (a caller maps uncached
    schedules across an executor, then primes the results back in).
    """

    #: Cache-key tag identifying how scores are computed.  Subclasses with a
    #: different evaluation strategy (see
    #: :class:`repro.perf.tensor.BatchScheduleEvaluator`) override it so
    #: their entries never mix with scalar ones in a shared cache.
    backend = "scalar"

    def __init__(
        self,
        predictor,
        governor,
        cache: EvalCache | None = None,
        objective: object = "makespan",
    ):
        self.predictor = predictor
        self.governor = governor
        self.cache = ensure_cache(cache)
        # Duck-typed: accepts an Objective enum member or its string value.
        self.objective: str = getattr(objective, "value", objective)
        if self.objective not in OBJECTIVE_TAGS:
            raise ValueError(
                f"unknown objective {objective!r}; known: "
                + ", ".join(OBJECTIVE_TAGS)
            )

    def _key(self, schedule) -> tuple:
        return schedule_key(schedule, self.objective, self.backend)

    def _metrics_key(self, schedule) -> tuple:
        # Metrics are computed under this evaluator's governor, whose
        # frequency choices are objective-specific — the tag keeps a
        # shared cache from serving one objective's metrics to another.
        return schedule_key(
            schedule, f"metrics:{self.objective}", self.backend
        )

    def _compute(self, schedule) -> float:
        # Imported lazily: repro.core modules import this module at load
        # time, so a top-level core import here would be circular.
        if self.objective == "makespan":
            from repro.core.schedule import predicted_makespan

            return predicted_makespan(schedule, self.predictor, self.governor)
        return self.metrics(schedule).score(self.objective)

    def __call__(self, schedule) -> float:
        return self.cache.get_or_compute(
            self._key(schedule), lambda: self._compute(schedule)
        )

    #: alias for readability at call sites (the historical name; it returns
    #: the objective score, which is the makespan for the default objective)
    makespan = __call__

    def metrics(self, schedule):
        """Memoized :class:`~repro.core.schedule.PredictedMetrics`."""
        from repro.core.schedule import predicted_metrics

        return self.cache.get_or_compute(
            self._metrics_key(schedule),
            lambda: predicted_metrics(schedule, self.predictor, self.governor),
        )

    def makespan_of(self, schedule) -> Seconds:
        """The predicted makespan regardless of this evaluator's objective."""
        if self.objective == "makespan":
            return self(schedule)
        return self.metrics(schedule).makespan_s

    def contains(self, schedule) -> bool:
        return self._key(schedule) in self.cache

    def prime(self, schedule, value: float) -> None:
        self.cache.prime(self._key(schedule), value)

    def evaluate_all(self, schedules: Sequence, executor=None) -> list[float]:
        """Evaluate many schedules, fanning uncached ones over ``executor``."""
        from repro.perf.parallel import map_makespans, map_predicted_metrics

        pending: dict[tuple, object] = {}
        for s in schedules:
            key = self._key(s)
            if key not in self.cache and key not in pending:
                pending[key] = s
        if pending:
            todo = list(pending.values())
            if self.objective == "makespan":
                values = map_makespans(
                    executor, self.predictor, self.governor, todo
                )
                for s, v in zip(todo, values):
                    self.prime(s, v)
            else:
                metrics = map_predicted_metrics(
                    executor, self.predictor, self.governor, todo
                )
                for s, m in zip(todo, metrics):
                    self.cache.prime(self._metrics_key(s), m)
                    self.prime(s, m.score(self.objective))
            # fan-out results count as evaluations, not hits
            self.cache.stats.misses += len(todo)
            self.cache.stats.hits -= len(todo)
        return [self(s) for s in schedules]

    def snapshot(self) -> dict[str, float]:
        return self.cache.snapshot()
