"""Content-hashed memoization for the evaluation hot paths.

Two pieces:

* :func:`fingerprint` — a stable content hash over the value-object graphs
  the library is built from (frozen dataclasses, numpy arrays, enums, plain
  containers).  Equal content yields equal keys across processes and across
  interpreter runs, which is what the on-disk cache needs.
* :class:`EvalCache` — a keyed memo store with hit/miss instrumentation,
  shared by the caching predictor, the schedule evaluator, and the
  characterization/profiling entry points.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass
from collections.abc import Callable, Hashable

import numpy as np


def _canonical(obj):
    """Recursively reduce ``obj`` to a deterministic, repr-stable form."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return (type(obj).__name__, obj.name)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ("ndarray", str(arr.dtype), arr.shape, arr.tobytes())
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(_canonical(x) for x in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(x)) for x in obj)))
    if isinstance(obj, dict):
        return (
            "map",
            tuple(
                sorted(
                    (repr(_canonical(k)), _canonical(v)) for k, v in obj.items()
                )
            ),
        )
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__}: not a value object"
    )


def fingerprint(*objs) -> str:
    """SHA-256 content hash of a tuple of value objects (hex digest)."""
    canon = tuple(_canonical(o) for o in objs)
    return hashlib.sha256(repr(canon).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/evaluation counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def evaluations(self) -> int:
        """Underlying computations actually performed (== misses)."""
        return self.misses

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


class EvalCache:
    """A keyed memo store with instrumentation.

    Keys are arbitrary hashable tuples; callers namespace their keys with a
    leading tag (``("deg", ...)``, ``("makespan", ...)``) so one cache can
    safely be shared across the predictor and the schedule evaluator.  The
    optional ``maxsize`` bounds memory with FIFO eviction.  Plain-dict
    operations keep it safe under the thread executor.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive (or None)")
        self.maxsize = maxsize
        self._data: dict[Hashable, object] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._data.clear()
        self.stats = CacheStats()

    def prime(self, key: Hashable, value) -> None:
        """Insert a value computed elsewhere (e.g. by a worker process)."""
        self._data[key] = value
        self._evict()

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]):
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            value = compute()
            self._data[key] = value
            self._evict()
            return value
        self.stats.hits += 1
        return value

    def _evict(self) -> None:
        if self.maxsize is None:
            return
        while len(self._data) > self.maxsize:
            self._data.pop(next(iter(self._data)))

    def snapshot(self) -> dict[str, float]:
        """Counters as a plain dict (for ``ScheduleOutcome`` / renderings)."""
        return {
            "cache_hits": float(self.stats.hits),
            "cache_misses": float(self.stats.misses),
            "cache_entries": float(len(self._data)),
            "cache_hit_rate": self.stats.hit_rate,
        }


def ensure_cache(cache: EvalCache | None) -> EvalCache:
    """Coerce ``cache=None`` to a fresh private cache."""
    return cache if cache is not None else EvalCache()
