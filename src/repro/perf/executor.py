"""The fan-out abstraction: serial, thread-pool, or process-pool mapping.

Every parallelizable loop in the library (the 121-cell characterization
sweep, per-job profiling, the Random-baseline repetitions, GA population
fitness, brute-force enumeration) funnels through ``executor.map``, so one
``--executor processes`` flag turns the whole pipeline parallel without any
call site knowing how.

Executors hold no live pools — a pool is opened per ``map`` call — which
keeps them stateless, picklable (they ride inside ``CoScheduleRuntime``
across process boundaries), and free of shutdown lifecycle.  ``map`` always
preserves input order and propagates worker exceptions, so results are
bitwise-identical across backends for deterministic tasks.
"""

from __future__ import annotations

import concurrent.futures
import os
from collections.abc import Callable, Iterable, Sequence


def _default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class SerialExecutor:
    """In-process, in-order mapping (the default; zero overhead)."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadExecutor:
    """Thread-pool mapping — wins when tasks release the GIL (numpy)."""

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ValueError("need at least one worker")

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(self.workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(workers={self.workers})"


class ProcessExecutor:
    """Process-pool mapping — true parallelism; tasks must be picklable."""

    name = "processes"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ValueError("need at least one worker")

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        chunksize = max(1, len(items) // (self.workers * 4))
        with concurrent.futures.ProcessPoolExecutor(self.workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={self.workers})"


#: Executor specs accepted everywhere an ``executor=`` argument appears.
_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}

Executor = SerialExecutor | ThreadExecutor | ProcessExecutor


def executor_names() -> Sequence[str]:
    """The accepted backend names (for CLI choices and error messages)."""
    return tuple(_BACKENDS)


def make_executor(spec=None) -> Executor:
    """Coerce an executor spec into an executor.

    Accepts ``None`` (serial), an existing executor, or a string spec:
    ``"serial"``, ``"threads"``, ``"processes"``, optionally with a worker
    count suffix (``"threads:4"``).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, (SerialExecutor, ThreadExecutor, ProcessExecutor)):
        return spec
    if isinstance(spec, str):
        name, _, count = spec.partition(":")
        if name not in _BACKENDS:
            raise ValueError(
                f"unknown executor {name!r}; expected one of "
                f"{', '.join(_BACKENDS)}"
            )
        if name == "serial":
            return SerialExecutor()
        workers = int(count) if count else None
        return _BACKENDS[name](workers)
    raise TypeError(f"cannot interpret executor spec {spec!r}")
