"""repro.perf — the shared evaluation layer.

Everything the schedulers repeatedly pay for — micro-benchmark
characterization, standalone profiling, degradation/power predictions, and
predicted makespans — funnels through this package:

* content-hashed memoization (:class:`EvalCache`, :class:`CachingPredictor`,
  :class:`ScheduleEvaluator`) with hit/miss instrumentation;
* an executor abstraction (``serial`` / ``threads`` / ``processes``) threaded
  through the characterization sweep, workload profiling, the Random
  baseline, GA population evaluation, and brute-force enumeration;
* an optional on-disk cache (:class:`DiskCache`, ``REPRO_CACHE_DIR``) so
  repeated CLI / experiment runs start warm;
* a vectorized tensor backend (:mod:`repro.perf.tensor`) that precomputes
  the whole ``(cpu_job, gpu_job, setting)`` question space as dense NumPy
  tensors and answers scheduler queries — single, batched, or delta — with
  array lookups instead of interpolation chains;
* vectorized population kernels (:mod:`repro.perf.population`) that run an
  entire GA generation or refinement neighborhood as ``(P, n)`` index
  matrices scored by one lockstep ``score_population`` replay.

All memoization is exact: cached and uncached evaluation produce identical
schedules and makespans, and the tensor backend is bit-for-bit equal to the
scalar reference path.
"""

from repro.perf.cache import CacheStats, EvalCache, ensure_cache, fingerprint
from repro.perf.diskcache import CACHE_DIR_ENV, DiskCache, resolve_disk_cache
from repro.perf.evaluator import CachingPredictor, ScheduleEvaluator, schedule_key
from repro.perf.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_names,
    make_executor,
)
from repro.perf.parallel import map_makespans, map_pair_degradations

# Imported last: repro.perf.tensor imports from the submodules above.
from repro.perf.tensor import (
    BatchScheduleEvaluator,
    PairTables,
    TensorBackedPredictor,
    TensorModel,
    tensorize,
)
from repro.perf.population import (
    decode_queues,
    evolve_population,
    refine_queues,
    swap_neighborhood,
)

__all__ = [
    "CacheStats",
    "EvalCache",
    "ensure_cache",
    "fingerprint",
    "CACHE_DIR_ENV",
    "DiskCache",
    "resolve_disk_cache",
    "CachingPredictor",
    "ScheduleEvaluator",
    "schedule_key",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "executor_names",
    "make_executor",
    "map_makespans",
    "map_pair_degradations",
    "BatchScheduleEvaluator",
    "PairTables",
    "TensorBackedPredictor",
    "TensorModel",
    "tensorize",
    "decode_queues",
    "evolve_population",
    "refine_queues",
    "swap_neighborhood",
]
