"""Experiment registry: name -> driver, for the CLI and the benchmarks.

Drivers historically exposed heterogeneous keyword signatures (some take
``cap_w``, some ``seed``, some neither).  :func:`run_experiment` now
accepts one uniform set of overrides — ``seed``, ``cap_w``, ``executor``
(or a bundled :class:`ExperimentConfig`) — and routes each override only
to the drivers whose signature accepts it, so callers never need to know
which experiment takes what.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from collections.abc import Callable

from repro.experiments import (
    ablations,
    arrivals,
    capcontrol,
    crossplatform,
    fig2,
    fig5_fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    energy,
    overhead,
    scaling,
    splitting,
    robustness,
    sec3_example,
    table1,
)
from repro.experiments.common import ExperimentResult

#: All experiment drivers, in the order they appear in the paper.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig2.run,
    "sec3": sec3_example.run,
    "fig5": fig5_fig6.run,
    "fig6": fig5_fig6.run,  # one sweep produces both surfaces
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table1": table1.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "overhead": overhead.run,
    "ablations": ablations.run,
    "robustness": robustness.run,
    "energy": energy.run,
    "capcontrol": capcontrol.run,
    "splitting": splitting.run,
    "scaling": scaling.run,
    "crossplatform": crossplatform.run,
    "arrivals": arrivals.run,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Uniform experiment overrides.

    Every field defaults to "leave the driver's own default alone"; set a
    field to override it for any driver that supports it.  ``executor`` is
    a string spec (``"serial"``/``"threads"``/``"processes[:N]"``) so it
    can flow through cached runtimes.
    """

    seed: int | None = None
    cap_w: float | None = None
    executor: str | None = None
    #: scheduling objective ("makespan"/"energy"/"edp") for drivers that
    #: construct schedules through the unified entry point
    objective: str | None = None

    def overrides(self) -> dict[str, object]:
        """The non-default fields as a kwargs dict."""
        out: dict[str, object] = {}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.cap_w is not None:
            out["cap_w"] = self.cap_w
        if self.executor is not None:
            out["executor"] = self.executor
        if self.objective is not None:
            out["objective"] = self.objective
        return out


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Look up a driver; raises ``KeyError`` with the available names."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None


def _accepted(driver: Callable[..., ExperimentResult]) -> set[str] | None:
    """Parameter names ``driver`` accepts (None = accepts anything)."""
    params = inspect.signature(driver).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return None
    return {
        name
        for name, p in params.items()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }


def run_experiment(
    name: str,
    *,
    seed: int | None = None,
    cap_w: float | None = None,
    executor: str | None = None,
    objective: str | None = None,
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """Run one experiment by name, with optional uniform overrides.

    ``seed``/``cap_w``/``executor``/``objective`` (or an
    :class:`ExperimentConfig` bundling them — explicit keywords win over
    the bundle) are forwarded only to drivers whose signatures accept
    them; an override a driver does not understand is silently skipped
    rather than raising, so the same config can drive the whole suite.
    """
    driver = get_experiment(name)
    merged = ExperimentConfig(
        seed=seed if seed is not None else (config.seed if config else None),
        cap_w=cap_w if cap_w is not None else (config.cap_w if config else None),
        executor=executor
        if executor is not None
        else (config.executor if config else None),
        objective=objective
        if objective is not None
        else (config.objective if config else None),
    )
    kwargs = merged.overrides()
    accepted = _accepted(driver)
    if accepted is not None:
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return driver(**kwargs)
