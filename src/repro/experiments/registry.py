"""Experiment registry: name -> driver, for the CLI and the benchmarks."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablations,
    arrivals,
    capcontrol,
    crossplatform,
    fig2,
    fig5_fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    energy,
    overhead,
    scaling,
    splitting,
    robustness,
    sec3_example,
    table1,
)
from repro.experiments.common import ExperimentResult

#: All experiment drivers, in the order they appear in the paper.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig2": fig2.run,
    "sec3": sec3_example.run,
    "fig5": fig5_fig6.run,
    "fig6": fig5_fig6.run,  # one sweep produces both surfaces
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table1": table1.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "overhead": overhead.run,
    "ablations": ablations.run,
    "robustness": robustness.run,
    "energy": energy.run,
    "capcontrol": capcontrol.run,
    "splitting": splitting.run,
    "scaling": scaling.run,
    "crossplatform": crossplatform.run,
    "arrivals": arrivals.run,
}


def get_experiment(name: str) -> Callable[[], ExperimentResult]:
    """Look up a driver; raises ``KeyError`` with the available names."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by name."""
    return get_experiment(name)()
