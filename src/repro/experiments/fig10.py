"""Figure 10: speedups over Random, 8 program instances, 15 W cap.

The paper's headline scheduling result: with Random as the baseline
(averaged over 20 seeds), Default_C gains ~9%, Default_G ~32%, HCS another
~6% over Default_G, HCS+ ~3% more, and the lower bound shows the remaining
headroom.  The *shape* to reproduce: Random < Default_C < Default_G < HCS
<= HCS+ < bound.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.freqpolicy import Bias
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.asciiplot import bar_chart
from repro.util.gantt import render_gantt
from repro.util.tables import format_table

#: Paper-reported speedups over Random (Figure 10).
PAPER_SPEEDUPS = {
    "default_c": 1.09,
    "default_g": 1.32,
    "hcs": 1.38,
    "hcs+": 1.41,
}


def run(
    cap_w: float = DEFAULT_POWER_CAP_W,
    *,
    instances: int = 1,
    n_random: int = 20,
    name: str = "fig10",
    paper_speedups: dict[str, float] | None = None,
    executor: str | None = None,
) -> ExperimentResult:
    if paper_speedups is None:
        paper_speedups = PAPER_SPEEDUPS
    runtime = default_runtime(instances=instances, cap_w=cap_w, executor=executor)

    random_mean = runtime.random_average(n=n_random).mean_makespan_s
    outcomes = {
        "default_c": runtime.run_default(bias=Bias.CPU),
        "default_g": runtime.run_default(bias=Bias.GPU),
        "hcs": runtime.run_hcs(),
        "hcs+": runtime.run_hcs(refine=True),
    }
    bound = runtime.lower_bound_s()

    rows = [("random", random_mean, 1.0, 1.0)]
    headline = {"random_makespan_s": random_mean, "bound_s": bound}
    labels, values = ["random"], [1.0]
    for policy, outcome in outcomes.items():
        speedup = random_mean / outcome.makespan_s
        rows.append((policy, outcome.makespan_s, speedup, paper_speedups[policy]))
        headline[f"{policy}_speedup"] = speedup
        labels.append(policy)
        values.append(speedup)
    rows.append(("lower bound", bound, random_mean / bound, float("nan")))
    labels.append("bound")
    values.append(random_mean / bound)
    headline["bound_speedup"] = random_mean / bound

    hcs_outcome = outcomes["hcs"]
    headline["scheduling_overhead_frac"] = (
        hcs_outcome.scheduling_time_s / hcs_outcome.makespan_s
    )

    result = ExperimentResult(
        name=name,
        title=f"Speedup over Random ({8 * instances} instances, "
        f"TDP={cap_w:.0f} W)",
        headline=headline,
        perf=runtime.perf_stats(),
    )
    result.add_section(
        "makespans and speedups",
        format_table(
            ["policy", "makespan (s)", "speedup/random", "paper"], rows, ndigits=3
        ),
    )
    result.add_section("speedup over Random", bar_chart(labels, values, unit="x"))
    result.add_section(
        "schedules",
        "HCS:\n" + outcomes["hcs"].schedule.describe()
        + "\nHCS+:\n" + outcomes["hcs+"].schedule.describe(),
    )
    best = outcomes["hcs+"]
    result.add_section(
        "HCS+ timeline",
        render_gantt(
            best.execution.completions, makespan_s=best.makespan_s
        ),
    )
    return result
