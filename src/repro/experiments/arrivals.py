"""Open-system study: co-scheduling under job arrivals.

The paper's batch setting assumes all jobs are present at time zero.  A
shared workstation receives jobs over time; this experiment replays
Poisson-ish arrival sequences of the calibrated programs at several load
levels and compares the naive FIFO server against the HCS rules applied
online (preference-aware placement + minimum-interference pairing), on
both makespan and mean turnaround.
"""

from __future__ import annotations


from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.freqpolicy import Bias, BiasedGovernor, ModelGovernor
from repro.core.online import FifoOnlinePolicy, HcsOnlinePolicy
from repro.engine.sim import Scenario, run as engine_run
from repro.workload.program import make_jobs
from repro.workload.rodinia import rodinia_programs
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.rng import default_rng
from repro.util.tables import format_table


def _arrival_sequence(jobs, mean_gap_s: float, rng) -> list:
    order = list(jobs)
    rng.shuffle(order)
    t = 0.0
    sequence = []
    for job in order:
        sequence.append((job, t))
        t += float(rng.exponential(mean_gap_s))
    return sequence


def run(
    cap_w: float = DEFAULT_POWER_CAP_W,
    mean_gaps_s=(0.0, 10.0, 25.0),
    seed: int = 5,
) -> ExperimentResult:
    runtime = default_runtime(cap_w=cap_w)
    jobs = make_jobs(rodinia_programs())

    rows = []
    headline = {}
    for gap in mean_gaps_s:
        rng = default_rng(seed)
        sequence = _arrival_sequence(jobs, gap, rng)

        scenario = Scenario.from_arrivals(sequence)
        fifo = engine_run(
            runtime.processor,
            scenario,
            policy=FifoOnlinePolicy(),
            governor=BiasedGovernor(runtime.predictor, cap_w, Bias.GPU),
        )
        hcs = engine_run(
            runtime.processor,
            scenario,
            policy=HcsOnlinePolicy(runtime.predictor, cap_w),
            governor=ModelGovernor(runtime.predictor, cap_w),
        )
        label = "batch (gap 0)" if gap == 0 else f"mean gap {gap:.0f}s"
        rows.append(
            (
                label,
                fifo.makespan_s,
                hcs.makespan_s,
                fifo.mean_turnaround_s,
                hcs.mean_turnaround_s,
            )
        )
        key = f"gap{gap:.0f}"
        headline[f"{key}_turnaround_gain"] = (
            fifo.mean_turnaround_s / hcs.mean_turnaround_s
        )
        headline[f"{key}_makespan_gain"] = fifo.makespan_s / hcs.makespan_s

    result = ExperimentResult(
        name="arrivals",
        title="Online co-scheduling under job arrivals (open system)",
        headline=headline,
    )
    result.add_section(
        "FIFO server vs online HCS rules",
        format_table(
            ["arrival load", "fifo makespan (s)", "hcs makespan (s)",
             "fifo mean turnaround (s)", "hcs mean turnaround (s)"],
            rows,
            ndigits=1,
        ),
    )
    result.add_section(
        "notes",
        "With job lengths of 25-80 s, even 25 s mean gaps keep the system "
        "loaded, so the preference-aware, contention-aware placement keeps "
        "its batch-mode advantage across these loads; FIFO's losses come "
        "mostly from placing GPU-preferred jobs on the throttled CPU "
        "whenever it happens to idle first.",
    )
    return result
