"""Scalability study: scheduling cost and quality versus batch size.

Section VI-D claims the heuristic's "linear computational complexity"
keeps scheduling below 0.1% of the makespan.  This experiment measures
HCS/HCS+ scheduling wall time on growing random batches and checks the
growth rate, alongside the schedule quality (speedup over Random and the
distance to the lower bound) so cost isn't traded for quality silently.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.runtime import CoScheduleRuntime
from repro.model.characterize import characterize_space
from repro.hardware.calibration import make_ivy_bridge
from repro.workload.generator import random_workload
from repro.experiments.common import ExperimentResult
from repro.util.tables import format_table


def run(
    sizes=(4, 8, 16, 24, 32),
    cap_w: float = DEFAULT_POWER_CAP_W,
    seed: int = 11,
) -> ExperimentResult:
    processor = make_ivy_bridge()
    space = characterize_space(processor)

    rows = []
    sched_times = []
    for i, n in enumerate(sizes):
        jobs = random_workload(n, seed=seed + i)
        runtime = CoScheduleRuntime(jobs, processor=processor, cap_w=cap_w,
                                    space=space)
        random_mean = runtime.random_average(n=5).mean_makespan_s
        outcome = runtime.run_hcs(refine=True)
        bound = runtime.lower_bound_s()
        sched_times.append(outcome.scheduling_time_s)
        rows.append(
            (
                n,
                outcome.scheduling_time_s * 1e3,
                100 * outcome.scheduling_time_s / outcome.makespan_s,
                random_mean / outcome.makespan_s,
                outcome.makespan_s / bound,
            )
        )

    # Empirical growth order: slope of log(time) vs log(n).
    logs = np.polyfit(np.log(sizes), np.log(sched_times), 1)
    growth = float(logs[0])

    result = ExperimentResult(
        name="scaling",
        title="Scheduling cost and quality vs batch size",
        headline={
            "empirical_growth_order": growth,
            "max_overhead_frac": max(r[2] for r in rows) / 100,
        },
    )
    result.add_section(
        "HCS+ on random batches",
        format_table(
            ["jobs", "sched (ms)", "overhead %", "speedup/random",
             "makespan/bound"],
            rows,
        ),
    )
    result.add_section(
        "growth",
        f"scheduling time ~ n^{growth:.2f} empirically (the candidate "
        "ranking is quadratic in jobs but each evaluation is O(1) table "
        "lookups; the paper calls the overall cost linear because the "
        "pairwise tables are precomputed).",
    )
    return result
