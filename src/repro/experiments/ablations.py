"""Ablation studies over the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation: each sweeps one knob of the
method while holding everything else at its default, quantifying how much
that choice matters.

* ``threshold_sweep`` — the preference threshold D (paper: 20%);
* ``grid_resolution`` — the degradation-space resolution (paper: 11x11);
* ``cap_sweep`` — the power-cap level (paper: 15 W);
* ``refine_ablation`` — contribution of each HCS+ refinement pass;
* ``oracle_gap`` — HCS driven by the interpolation model versus by
  ground-truth degradations (the cost of model error).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.workload.program import make_jobs
from repro.workload.rodinia import rodinia_programs
from repro.core.hcs import hcs_schedule
from repro.core.refine import (
    SAMPLES_PER_JOB,
    _adjacent_pass,
    _random_cross_pass,
    _random_intra_pass,
)
from repro.core.runtime import CoScheduleRuntime
from repro.model.accuracy import evaluate_performance_model
from repro.model.characterize import characterize_space
from repro.model.predictor import CoRunPredictor, OracleDegradations
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.tables import format_table


def threshold_sweep(
    thresholds=(0.0, 0.1, 0.2, 0.4, 1.0), cap_w: float = DEFAULT_POWER_CAP_W
):
    """HCS quality as a function of the preference threshold D."""
    runtime = default_runtime(cap_w=cap_w)
    baseline = runtime.random_average(n=10).mean_makespan_s
    rows = []
    for d in thresholds:
        outcome = runtime.run_hcs(threshold=d)
        rows.append((f"D={d:.1f}", outcome.makespan_s, baseline / outcome.makespan_s))
    return rows


def grid_resolution(levels=(3, 5, 7, 11, 15)):
    """Performance-model error as a function of the grid resolution."""
    runtime = default_runtime()
    rows = []
    for n in levels:
        space = characterize_space(runtime.processor, n_levels=n)
        predictor = CoRunPredictor(runtime.processor, runtime.table, space)
        records = evaluate_performance_model(
            runtime.processor, predictor, runtime.table.uids,
            runtime.processor.max_setting,
        )
        errors = np.array([r.error for r in records])
        rows.append((f"{n}x{n}", n * n, 100 * float(errors.mean())))
    return rows


def cap_sweep(caps=(12.0, 15.0, 18.0, 21.0, 25.0)):
    """HCS+ speedup over Random across power-cap levels."""
    jobs = make_jobs(rodinia_programs())
    rows = []
    for cap in caps:
        runtime = CoScheduleRuntime(jobs, cap_w=cap)
        baseline = runtime.random_average(n=10).mean_makespan_s
        outcome = runtime.run_hcs(refine=True)
        rows.append((f"{cap:.0f} W", outcome.makespan_s, baseline / outcome.makespan_s))
    return rows


def refine_ablation(
    cap_w: float = DEFAULT_POWER_CAP_W,
    instances: int = 2,
    objective: str = "makespan",
    seed: int | None = None,
):
    """Predicted-score gain of each refinement pass in isolation.

    Each pass restarts from the unrefined HCS schedule so the rows report
    independent contributions, not a cumulative pipeline.  Under a
    non-makespan ``objective`` the same passes minimize that objective's
    predicted score (the evaluator is the only scorer).
    """
    runtime = default_runtime(instances=instances, cap_w=cap_w)
    ctx = runtime.context(objective=objective, seed=seed)
    result = hcs_schedule(ctx)
    evaluate = ctx.evaluator
    base = evaluate(result.schedule)
    rng = ctx.rng()
    n_samples = SAMPLES_PER_JOB * result.schedule.n_jobs

    rows = [("no refinement", base, 0.0)]
    for label, pass_fn in (
        ("adjacent swaps", lambda s, b: _adjacent_pass(s, evaluate, b)),
        ("random intra-processor swaps",
         lambda s, b: _random_intra_pass(s, evaluate, b, rng, n_samples)),
        ("random cross-processor swaps",
         lambda s, b: _random_cross_pass(s, evaluate, b, rng, n_samples)),
    ):
        _, refined = pass_fn(result.schedule, base)
        rows.append((label, refined, 100 * (base - refined) / base))
    return rows


def anchor_sweep():
    """Single-anchor vs staged multi-anchor interpolation accuracy.

    The extra anchors cost 121 micro co-runs each; the payoff appears at
    settings far from the both-max anchor.
    """
    from repro.model.characterize import characterize_staged_space

    runtime = default_runtime()
    single = runtime.predictor
    staged = CoRunPredictor(
        runtime.processor, runtime.table, characterize_staged_space(runtime.processor)
    )
    rows = []
    for label, setting in (
        ("both max", runtime.processor.max_setting),
        ("both medium", runtime.processor.medium_setting),
        ("both min", runtime.processor.min_setting),
    ):
        e_single = np.mean([
            r.error
            for r in evaluate_performance_model(
                runtime.processor, single, runtime.table.uids, setting
            )
        ])
        e_staged = np.mean([
            r.error
            for r in evaluate_performance_model(
                runtime.processor, staged, runtime.table.uids, setting
            )
        ])
        rows.append((label, 100 * float(e_single), 100 * float(e_staged)))
    return rows


def oracle_gap(cap_w: float = DEFAULT_POWER_CAP_W):
    """Measured HCS makespan with the interpolation model vs an oracle.

    The oracle variant feeds ground-truth degradations into the greedy
    pairing (placement and frequency choices still come from the model's
    profiled times); the gap is the scheduling cost of model error.
    """
    runtime = default_runtime(cap_w=cap_w)
    model_outcome = runtime.run_hcs()

    oracle = OracleDegradations(runtime.processor, runtime.table)
    # A thin predictor whose degradations come from the oracle but whose
    # times/powers still come from the profiled table.
    class _OraclePredictor(CoRunPredictor):
        def degradations(self, cpu_uid, gpu_uid, setting):
            return oracle.degradations(cpu_uid, gpu_uid, setting)

    oracle_predictor = _OraclePredictor(
        runtime.processor, runtime.table, runtime.space
    )
    oracle_result = hcs_schedule(oracle_predictor, runtime.jobs, cap_w)
    oracle_exec = runtime.execute(
        oracle_result.schedule, oracle_result.governor
    )
    return [
        ("interpolation model", model_outcome.makespan_s),
        ("ground-truth oracle", oracle_exec.makespan_s),
    ]


def run(objective: str = "makespan") -> ExperimentResult:
    result = ExperimentResult(name="ablations", title="Design-choice ablations")
    result.add_section(
        "preference threshold D (paper default 0.2)",
        format_table(["threshold", "HCS makespan (s)", "speedup/random"],
                     threshold_sweep(), ndigits=3),
    )
    result.add_section(
        "degradation-space grid resolution (paper 11x11)",
        format_table(["grid", "micro co-runs", "mean model error %"],
                     grid_resolution(), ndigits=2),
    )
    result.add_section(
        "power-cap sweep (HCS+)",
        format_table(["cap", "makespan (s)", "speedup/random"],
                     cap_sweep(), ndigits=3),
    )
    result.add_section(
        f"refinement passes (16 jobs, predicted {objective} score)",
        format_table(["pass", f"predicted {objective}", "gain %"],
                     refine_ablation(objective=objective), ndigits=3),
    )
    result.add_section(
        "model-error cost (8 jobs, measured makespan)",
        format_table(["degradation source", "HCS makespan (s)"],
                     oracle_gap(), ndigits=2),
    )
    result.add_section(
        "frequency anchors in the staged interpolation",
        format_table(
            ["evaluation setting", "1 anchor error %", "4 anchors error %"],
            anchor_sweep(),
            ndigits=2,
        ),
    )
    return result
