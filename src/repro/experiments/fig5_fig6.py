"""Figures 5 and 6: the co-run degradation spectra.

The micro-benchmark sweep produces two surfaces over the 11x11 bandwidth
grid: CPU-side degradation (Figure 5) and GPU-side degradation (Figure 6).
The paper's qualitative facts, locked in by tests:

* higher-throughput settings suffer and inflict more;
* the GPU suffers more at low/medium contention (most degradations in the
  20-40% band) while the CPU stays below 20% in about half the cases;
* past ~8.5 GB/s on both sides the CPU overtakes: worst CPU degradation
  ~65% versus ~45% for the GPU.
"""

from __future__ import annotations

from repro.hardware.calibration import make_ivy_bridge
from repro.model.characterize import characterize_space
from repro.experiments.common import ExperimentResult
from repro.util.asciiplot import surface
from repro.util.tables import format_kv


def run(n_levels: int = 11) -> ExperimentResult:
    processor = make_ivy_bridge()
    space = characterize_space(processor, n_levels=n_levels)
    stats = space.summary()

    result = ExperimentResult(
        name="fig5_fig6",
        title="Co-run degradation spectra from micro-benchmark co-runs",
        headline=stats,
    )
    result.add_section(
        "Figure 5: CPU degradation (rows: CPU GB/s, cols: GPU GB/s)",
        surface(
            space.cpu_grid.values, x_label="gpu bw", y_label="cpu bw",
        ),
    )
    result.add_section(
        "Figure 6: GPU degradation (rows: CPU GB/s, cols: GPU GB/s)",
        surface(
            space.gpu_grid.values, x_label="gpu bw", y_label="cpu bw",
        ),
    )
    result.add_section(
        "paper targets",
        format_kv(
            {
                "max cpu degradation (paper ~0.65)": stats["max_cpu_degradation"],
                "max gpu degradation (paper ~0.45)": stats["max_gpu_degradation"],
                "frac cpu <= 20% (paper ~half)": stats["frac_cpu_below_20pct"],
            }
        ),
    )
    return result
