"""Energy study: throughput-optimal vs energy-optimal frequency policies.

Runs the HCS+ schedule of the 8-program workload under three governors —
the performance-oriented HCS governor, the energy-aware governor, and the
GPU-biased baseline policy — and reports makespan, energy, mean power, and
energy-delay product for each.  Quantifies the trade the power cap leaves
open: the cap limits *instantaneous* power, but which point under the cap
to run at is an objective choice Definition 2.1 does not fix.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.freqpolicy import Bias, BiasedGovernor, ModelGovernor
from repro.core.hcs import hcs_schedule
from repro.core.objectives import EnergyAwareGovernor, Objective, score_execution
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.tables import format_table


def run(cap_w: float = DEFAULT_POWER_CAP_W) -> ExperimentResult:
    runtime = default_runtime(cap_w=cap_w)
    result_hcs = hcs_schedule(runtime.predictor, runtime.jobs, cap_w, refine=True)
    schedule = result_hcs.schedule

    governors = {
        "performance (HCS)": result_hcs.governor,
        "energy-aware": EnergyAwareGovernor(runtime.predictor, cap_w),
        "gpu-biased": BiasedGovernor(runtime.predictor, cap_w, Bias.GPU),
    }

    rows = []
    headline = {}
    for name, governor in governors.items():
        execution = runtime.execute(schedule, governor)
        rows.append(
            (
                name,
                execution.makespan_s,
                execution.energy_j / 1e3,
                execution.mean_power_w,
                score_execution(execution, Objective.EDP) / 1e6,
            )
        )
        key = name.split()[0].split("-")[0]
        headline[f"{key}_makespan_s"] = execution.makespan_s
        headline[f"{key}_energy_kj"] = execution.energy_j / 1e3

    result = ExperimentResult(
        name="energy",
        title="Throughput-optimal vs energy-optimal frequency policies",
        headline=headline,
    )
    result.add_section(
        f"HCS+ schedule under different governors ({cap_w:.0f} W cap)",
        format_table(
            ["governor", "makespan (s)", "energy (kJ)", "mean power (W)",
             "EDP (MJ*s)"],
            rows,
            ndigits=2,
        ),
    )
    return result
