"""Energy study: what changes when the *objective* changes.

Two questions, both through the unified ``schedule()`` entry point:

1. **Governor sweep** — fix the schedule (HCS+ built for ``objective``,
   makespan by default) and execute it under three frequency policies: the
   performance-oriented HCS governor, the energy-aware governor, and the
   GPU-biased baseline.  Quantifies the trade the power cap leaves open:
   the cap limits *instantaneous* power, but which point under the cap to
   run at is an objective choice Definition 2.1 does not fix.

2. **Objective sweep** — re-run the scheduler itself once per objective
   (makespan / energy / EDP) and execute each result under its own
   governor.  Shows what end-to-end objective-aware scheduling buys over
   merely swapping the governor under a makespan-optimal schedule.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.api import schedule
from repro.core.freqpolicy import Bias, BiasedGovernor
from repro.core.objectives import EnergyAwareGovernor, Objective, score_execution
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.tables import format_table


def run(
    cap_w: float = DEFAULT_POWER_CAP_W,
    objective: str = "makespan",
    seed: int | None = None,
) -> ExperimentResult:
    runtime = default_runtime(cap_w=cap_w)
    base = schedule(
        runtime.jobs,
        method="hcs+",
        cap_w=cap_w,
        objective=objective,
        predictor=runtime.predictor,
        seed=seed,
    )

    governors = {
        "performance (HCS)": base.governor
        if base.objective is Objective.MAKESPAN
        else runtime.context(objective="makespan").governor,
        "energy-aware": EnergyAwareGovernor(runtime.predictor, cap_w),
        "gpu-biased": BiasedGovernor(runtime.predictor, cap_w, Bias.GPU),
    }

    rows = []
    headline = {}
    for name, governor in governors.items():
        execution = runtime.execute(base.schedule, governor)
        rows.append(
            (
                name,
                execution.makespan_s,
                execution.energy_j / 1e3,
                execution.mean_power_w,
                score_execution(execution, Objective.EDP) / 1e6,
            )
        )
        key = name.split()[0].split("-")[0]
        headline[f"{key}_makespan_s"] = execution.makespan_s
        headline[f"{key}_energy_kj"] = execution.energy_j / 1e3

    obj_rows = []
    for obj in Objective:
        result = schedule(
            runtime.jobs,
            method="hcs+",
            cap_w=cap_w,
            objective=obj,
            predictor=runtime.predictor,
            seed=seed,
        )
        execution = runtime.execute(result.schedule, result.governor)
        obj_rows.append(
            (
                obj.value,
                execution.makespan_s,
                execution.energy_j / 1e3,
                execution.mean_power_w,
                score_execution(execution, Objective.EDP) / 1e6,
            )
        )
        headline[f"obj_{obj.value}_makespan_s"] = execution.makespan_s
        headline[f"obj_{obj.value}_energy_kj"] = execution.energy_j / 1e3

    result = ExperimentResult(
        name="energy",
        title="Throughput-optimal vs energy-optimal co-scheduling",
        headline=headline,
        perf=runtime.perf_stats(),
    )
    result.add_section(
        f"HCS+ ({base.objective.value}) schedule under different governors "
        f"({cap_w:.0f} W cap)",
        format_table(
            ["governor", "makespan (s)", "energy (kJ)", "mean power (W)",
             "EDP (MJ*s)"],
            rows,
            ndigits=2,
        ),
    )
    result.add_section(
        f"HCS+ re-scheduled per objective ({cap_w:.0f} W cap)",
        format_table(
            ["objective", "makespan (s)", "energy (kJ)", "mean power (W)",
             "EDP (MJ*s)"],
            obj_rows,
            ndigits=2,
        ),
    )
    return result
