"""Figure 8: power-model error distribution over the 64 co-run pairs.

Each pair runs at the best-performing frequency setting that fits the 16 W
cap; the predicted co-run power (sum of standalone device powers plus
uncore) is scored against the simulated mean power while both jobs run.
The paper reports a 1.92% mean error, 69% of pairs under 2%, and no error
above 8%.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.calibration import MODEL_POWER_CAP_W
from repro.experiments.common import ExperimentResult, default_runtime
from repro.model.accuracy import evaluate_power_model
from repro.util.asciiplot import histogram
from repro.util.stats import histogram_bins

BIN_EDGES = (0.0, 0.02, 0.04, 0.06, 0.08, 1_000.0)
BIN_LABELS = ("0-2%", "2-4%", "4-6%", "6-8%", ">8%")


def run(cap_w: float = MODEL_POWER_CAP_W) -> ExperimentResult:
    runtime = default_runtime()
    records = evaluate_power_model(
        runtime.processor, runtime.predictor, runtime.table.uids, cap_w
    )
    errors = np.array([r.error for r in records])
    fracs = histogram_bins(errors, BIN_EDGES)

    result = ExperimentResult(
        name="fig8",
        title="Error-rate distribution of the co-run power model",
        headline={
            "mean_error": float(errors.mean()),
            "max_error": float(errors.max()),
            "frac_below_2pct": float(np.mean(errors < 0.02)),
        },
    )
    result.add_section(
        f"power prediction errors under {cap_w:.0f} W "
        f"(paper: mean 1.92%, max < 8%)",
        histogram(BIN_LABELS, fracs),
    )
    return result
