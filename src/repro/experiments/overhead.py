"""Section VI-D: scheduling overhead.

The paper reports that the scheduling algorithm costs less than 0.1% of the
makespan thanks to its linear complexity.  Here the comparison is between
the *wall-clock* time our HCS/HCS+ implementation spends scheduling and
the *simulated* makespan of the resulting schedule; since a simulated
second is calibrated to a real second of the paper's workloads (Table I),
the ratio is meaningful.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.tables import format_table


def run(
    cap_w: float = DEFAULT_POWER_CAP_W, *, executor: str | None = None
) -> ExperimentResult:
    rows = []
    headline = {}
    perf: dict[str, float] = {}
    for instances, label in ((1, "8 jobs"), (2, "16 jobs")):
        runtime = default_runtime(
            instances=instances, cap_w=cap_w, executor=executor
        )
        for refine, policy in ((False, "hcs"), (True, "hcs+")):
            outcome = runtime.run_hcs(refine=refine)
            frac = outcome.scheduling_time_s / outcome.makespan_s
            rows.append(
                (f"{policy} ({label})", outcome.scheduling_time_s * 1e3,
                 outcome.makespan_s, 100 * frac)
            )
            headline[f"{policy}_{instances}x_overhead_frac"] = frac
        perf = runtime.perf_stats()

    result = ExperimentResult(
        name="overhead",
        title="Scheduling overhead (paper: < 0.1% of the makespan)",
        headline=headline,
        perf=perf,
    )
    result.add_section(
        "scheduling cost vs makespan",
        format_table(
            ["configuration", "scheduling (ms)", "makespan (s)", "overhead %"],
            rows,
            ndigits=3,
        ),
    )
    return result
