"""Robustness studies: how much fidelity does the pipeline really need?

Three questions a deployer of the paper's runtime would ask, answered on
the calibrated workload:

* **Noise injection** — if the degradation predictions were worse (every
  prediction perturbed by multiplicative lognormal noise), how fast does
  HCS's schedule quality decay?  This turns Figure 7's "is 15% error good
  enough?" into a curve.
* **Sampled profiles** — replacing offline standalone profiling with the
  Section V-C online prefix-sampling estimator: what do the cheap profiles
  cost in profile accuracy and in end-to-end makespan?
* **Search headroom** — an A*-search comparator (extending the Tian et al.
  approach the paper discusses) over the same predicted model: how close is
  greedy HCS to what exhaustive search finds?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.core.astar import astar_schedule
from repro.core.hcs import hcs_schedule
from repro.core.runtime import CoScheduleRuntime
from repro.model.predictor import CoRunPredictor
from repro.model.sampling import (
    SamplingConfig,
    profile_estimation_errors,
    sample_profile_table,
)
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.rng import default_rng
from repro.util.tables import format_kv, format_table


@dataclass(frozen=True)
class NoisyPredictor(CoRunPredictor):
    """A predictor whose degradations carry extra multiplicative noise.

    The noise is deterministic per (pair, setting) — the same wrong answer
    every time, like a systematically biased model, rather than a jittery
    one.
    """

    noise_sigma: float = 0.0
    seed: int = 0

    def degradations(self, cpu_uid, gpu_uid, setting):
        d_c, d_g = super().degradations(cpu_uid, gpu_uid, setting)
        if self.noise_sigma <= 0.0:
            return d_c, d_g
        key = hash((cpu_uid, gpu_uid, setting, self.seed)) % (2**32)
        rng = default_rng(int(key))
        factors = np.exp(rng.normal(0.0, self.noise_sigma, size=2))
        return d_c * float(factors[0]), d_g * float(factors[1])


def noise_sweep(
    sigmas=(0.0, 0.25, 0.5, 1.0, 2.0),
    cap_w: float = DEFAULT_POWER_CAP_W,
    n_seeds: int = 3,
):
    """Measured HCS makespan as prediction noise grows."""
    runtime = default_runtime(cap_w=cap_w)
    rows = []
    for sigma in sigmas:
        makespans = []
        for seed in range(n_seeds):
            noisy = NoisyPredictor(
                runtime.processor,
                runtime.table,
                runtime.space,
                noise_sigma=sigma,
                seed=seed,
            )
            result = hcs_schedule(noisy, runtime.jobs, cap_w)
            execution = runtime.execute(result.schedule, result.governor)
            makespans.append(execution.makespan_s)
        rows.append((f"sigma={sigma:.2f}", float(np.mean(makespans))))
    return rows


def sampled_profiles_study(
    cap_w: float = DEFAULT_POWER_CAP_W,
    config: SamplingConfig | None = None,
):
    """Offline profiling vs prefix-sampling estimation, end to end."""
    if config is None:
        config = SamplingConfig()
    runtime = default_runtime(cap_w=cap_w)
    sampled_table = sample_profile_table(
        runtime.processor, list(runtime.jobs), config
    )
    errors = profile_estimation_errors(runtime.table, sampled_table)

    sampled_predictor = CoRunPredictor(
        runtime.processor, sampled_table, runtime.space
    )
    offline = runtime.run_hcs()
    sampled_result = hcs_schedule(sampled_predictor, runtime.jobs, cap_w)
    sampled_exec = runtime.execute(
        sampled_result.schedule, sampled_result.governor
    )
    summary = {
        **errors,
        "offline_makespan_s": offline.makespan_s,
        "sampled_makespan_s": sampled_exec.makespan_s,
        "sampling_cost_frac": config.sample_fraction
        * config.n_anchor_levels
        / (
            runtime.processor.cpu.domain.n_levels
            + runtime.processor.gpu.domain.n_levels
        ),
    }
    return summary


def search_headroom(cap_w: float = DEFAULT_POWER_CAP_W, n_jobs: int = 6):
    """HCS vs GA vs A* under the same predicted model (measured makespans)."""
    from repro.core.genetic import GaConfig, genetic_schedule

    runtime = default_runtime(cap_w=cap_w)
    jobs = list(runtime.jobs)[:n_jobs]
    sub_runtime = CoScheduleRuntime(
        jobs, processor=runtime.processor, cap_w=cap_w, space=runtime.space
    )
    hcs = sub_runtime.run_hcs()
    ga_schedule_, _ = genetic_schedule(
        sub_runtime.predictor, jobs, cap_w, seed=0,
        config=GaConfig(population=24, generations=20),
    )
    ga_exec = sub_runtime.execute(ga_schedule_)
    schedule, predicted, expanded = astar_schedule(
        sub_runtime.predictor, jobs, cap_w, node_budget=60_000
    )
    astar_exec = sub_runtime.execute(schedule)
    return [
        ("hcs (greedy)", hcs.makespan_s),
        ("genetic algorithm", ga_exec.makespan_s),
        (f"a* ({expanded} nodes)", astar_exec.makespan_s),
    ]


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="robustness", title="Model-fidelity robustness studies"
    )
    noise_rows = noise_sweep()
    result.add_section(
        "HCS vs degradation-prediction noise (measured makespan, 8 jobs)",
        format_table(["noise", "mean makespan (s)"], noise_rows, ndigits=2),
    )
    baseline = noise_rows[0][1]
    worst = max(r[1] for r in noise_rows)
    result.headline["noise_worst_degradation_frac"] = worst / baseline - 1.0

    sampled = sampled_profiles_study()
    result.add_section(
        "offline vs prefix-sampled standalone profiles",
        format_kv(sampled),
    )
    result.headline["sampled_vs_offline_makespan"] = (
        sampled["sampled_makespan_s"] / sampled["offline_makespan_s"]
    )

    headroom = search_headroom()
    result.add_section(
        "greedy HCS vs A* search (6 jobs, same predicted model)",
        format_table(["scheduler", "measured makespan (s)"], headroom, ndigits=2),
    )
    result.headline["hcs_over_astar"] = headroom[0][1] / headroom[1][1]
    return result
