"""Figure 9: per-second power samples of four random co-run pairs.

Each pair runs at the best cap-feasible setting under the 16 W cap; the
chip power is sampled at 1 Hz (RAPL style).  The paper's observations:
power stays below the cap most of the time, and overshoot — caused by the
~2% power-prediction error — is typically under 2 W.
"""

from __future__ import annotations

from repro.hardware.calibration import MODEL_POWER_CAP_W
from repro.engine.corun import corun_pair
from repro.engine.tracing import segments_to_trace
from repro.experiments.common import ExperimentResult, default_runtime
from repro.model.accuracy import best_feasible_setting
from repro.util.asciiplot import line_trace
from repro.util.rng import default_rng
from repro.util.tables import format_table


def run(
    cap_w: float = MODEL_POWER_CAP_W,
    n_pairs: int = 4,
    seed=None,
) -> ExperimentResult:
    runtime = default_runtime()
    rng = default_rng(seed)
    uids = runtime.table.uids

    pairs = []
    while len(pairs) < n_pairs:
        c, g = rng.choice(uids, size=2, replace=False)
        if (c, g) not in pairs:
            pairs.append((str(c), str(g)))

    rows = []
    traces = {}
    worst_overshoot = 0.0
    for cpu_uid, gpu_uid in pairs:
        setting = best_feasible_setting(runtime.predictor, cpu_uid, gpu_uid, cap_w)
        res = corun_pair(
            runtime.processor,
            runtime.table.job(cpu_uid).profile,
            runtime.table.job(gpu_uid).profile,
            setting,
        )
        trace = segments_to_trace(res.segments, dt_s=1.0)
        name = f"{cpu_uid}-{gpu_uid}"
        traces[name] = list(trace.watts)
        overshoot = trace.max_overshoot(cap_w)
        worst_overshoot = max(worst_overshoot, overshoot)
        rows.append(
            (name, trace.mean_power(), float(trace.watts.max()), overshoot,
             100 * trace.fraction_over(cap_w))
        )

    result = ExperimentResult(
        name="fig9",
        title="Power samples of four random co-runs vs the cap",
        headline={
            "max_overshoot_w": worst_overshoot,
            "cap_w": cap_w,
        },
    )
    result.add_section(
        "per-pair power statistics (pair A-B: A on CPU, B on GPU)",
        format_table(
            ["pair", "mean W", "max W", "overshoot W", "% samples over cap"],
            rows,
        ),
    )
    # Render the shortest common prefix so all series share the time axis.
    horizon = min(len(v) for v in traces.values())
    result.add_section(
        "1 Hz power trace (first %d s; cap drawn as ---)" % horizon,
        line_trace({k: v[:horizon] for k, v in traces.items()}, cap=cap_w),
    )
    return result
