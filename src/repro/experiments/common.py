"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.workload.program import make_jobs
from repro.workload.rodinia import rodinia_programs
from repro.core.runtime import CoScheduleRuntime
from repro.util.tables import format_kv

#: Input-size scales of the two instances in the 16-program study ("two
#: instances for each of the eight programs with different inputs").
INSTANCE_SCALES = (1.0, 0.85)


@dataclass
class ExperimentResult:
    """Rendered output plus machine-readable headline metrics.

    ``perf`` holds the evaluation-layer counters of the runtime that
    produced the result (cache hits/misses, hit rate — see
    :meth:`repro.core.runtime.CoScheduleRuntime.perf_stats`); when present
    it is rendered as its own section.
    """

    name: str
    title: str
    headline: dict[str, float] = field(default_factory=dict)
    sections: list[tuple[str, str]] = field(default_factory=list)
    perf: dict[str, float] = field(default_factory=dict)

    def add_section(self, title: str, body: str) -> None:
        self.sections.append((title, body))

    def render(self) -> str:
        lines = [f"=== {self.name}: {self.title} ==="]
        for title, body in self.sections:
            lines.append("")
            lines.append(f"--- {title} ---")
            lines.append(body)
        if self.headline:
            lines.append("")
            lines.append("--- headline metrics ---")
            lines.append(format_kv(self.headline, ndigits=4))
        if self.perf:
            lines.append("")
            lines.append("--- perf layer ---")
            lines.append(format_kv(self.perf, ndigits=4))
        return "\n".join(lines)


@lru_cache(maxsize=8)
def default_runtime(
    instances: int = 1,
    cap_w: float = DEFAULT_POWER_CAP_W,
    executor: str | None = None,
) -> CoScheduleRuntime:
    """A cached runtime over the calibrated Rodinia-like workload.

    ``instances=2`` reproduces the 16-program study's job set (two
    differently sized instances per program).  ``executor`` is a *string*
    spec (``"serial"``/``"threads"``/``"processes[:N]"``) rather than an
    executor object so the cache key stays hashable.
    """
    if instances == 1:
        jobs = make_jobs(rodinia_programs())
    else:
        scales = INSTANCE_SCALES[:instances]
        jobs = make_jobs(rodinia_programs(), instances=instances, instance_scales=scales)
    return CoScheduleRuntime(jobs, cap_w=cap_w, executor=executor)
