"""Figure 7: performance-model error distribution over the 64 co-run pairs.

Every ordered pair of the eight programs is co-run at two frequency
settings — both devices at maximum, and both at their medium level — and
the predicted co-run times are scored against the simulated ground truth.
The paper reports ~15% mean error at the high setting and ~11% at medium,
with about half the pairs under 10% and over 70% under 20%.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, default_runtime
from repro.model.accuracy import evaluate_performance_model
from repro.util.asciiplot import histogram
from repro.util.stats import histogram_bins

#: Error-range bin edges of the paper's histogram (fractions).
BIN_EDGES = (0.0, 0.10, 0.20, 0.30, 1_000.0)
BIN_LABELS = ("0-10%", "10-20%", "20-30%", ">30%")


def run() -> ExperimentResult:
    runtime = default_runtime()
    processor, predictor = runtime.processor, runtime.predictor
    uids = runtime.table.uids

    headline: dict[str, float] = {}
    result = ExperimentResult(
        name="fig7",
        title="Error-rate distribution of the co-run performance model",
    )
    for label, setting, paper_mean in (
        ("high frequency (both max)", processor.max_setting, 0.15),
        ("medium frequency", processor.medium_setting, 0.11),
    ):
        records = evaluate_performance_model(processor, predictor, uids, setting)
        errors = np.array([r.error for r in records])
        fracs = histogram_bins(errors, BIN_EDGES)
        key = "high" if "high" in label else "medium"
        headline[f"{key}_mean_error"] = float(errors.mean())
        headline[f"{key}_frac_below_10pct"] = float(np.mean(errors < 0.10))
        headline[f"{key}_frac_below_20pct"] = float(np.mean(errors < 0.20))
        result.add_section(
            f"{label} — mean error {errors.mean():.1%} (paper ~{paper_mean:.0%})",
            histogram(BIN_LABELS, fracs),
        )
    result.headline = headline
    return result
