"""Predictive vs reactive power-cap enforcement.

The paper enforces the cap a priori, from predicted powers (Section V); real
RAPL hardware reacts a posteriori, from measured power.  This experiment
runs the same HCS schedule under both and compares makespan, overshoot, and
cap compliance — the trade: the predictive controller needs a model but
never waits to learn the operating point; the reactive one needs no model
but oscillates around the cap and loses time converging.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.engine.feedback import execute_with_reactive_cap
from repro.engine.tracing import segments_to_trace
from repro.experiments.common import ExperimentResult, default_runtime
from repro.util.tables import format_table


def run(cap_w: float = DEFAULT_POWER_CAP_W) -> ExperimentResult:
    runtime = default_runtime(cap_w=cap_w)
    hcs = runtime.run_hcs()
    schedule = hcs.schedule

    predictive = hcs.execution
    reactive, settings_trace = execute_with_reactive_cap(
        runtime.processor,
        schedule.cpu_queue,
        schedule.gpu_queue,
        cap_w,
    )

    rows = []
    headline = {}
    for name, execution in (("predictive", predictive), ("reactive", reactive)):
        trace = segments_to_trace(execution.segments, dt_s=1.0)
        rows.append(
            (
                name,
                execution.makespan_s,
                trace.mean_power(),
                trace.max_overshoot(cap_w),
                100 * trace.fraction_over(cap_w),
            )
        )
        headline[f"{name}_makespan_s"] = execution.makespan_s
        headline[f"{name}_overshoot_w"] = trace.max_overshoot(cap_w)
        headline[f"{name}_frac_over"] = trace.fraction_over(cap_w)
    headline["reactive_setting_changes"] = float(
        sum(1 for a, b in zip(settings_trace, settings_trace[1:]) if a != b)
    )

    result = ExperimentResult(
        name="capcontrol",
        title="Predictive (model-based) vs reactive (RAPL-style) cap control",
        headline=headline,
    )
    result.add_section(
        f"HCS schedule under a {cap_w:.0f} W cap",
        format_table(
            ["controller", "makespan (s)", "mean W", "max overshoot W",
             "% samples over"],
            rows,
            ndigits=2,
        ),
    )
    result.add_section(
        "notes",
        "The predictive controller inherits the ~2% power-model error "
        "(small, persistent overshoot risk); the reactive controller "
        "oscillates one frequency level around the cap and pays a "
        "convergence cost after every job transition "
        f"({headline['reactive_setting_changes']:.0f} setting changes).",
    )
    return result
