"""Cross-platform check: do the results survive a different APU?

Section V-A notes the same co-run phenomena on "both Intel and AMD"
integrated processors.  This experiment re-runs the headline scheduling
comparison on a second calibration — an AMD-Llano-like mobile APU with a
narrower CPU DVFS span, a wide low-clocked GPU, 32 nm power
characteristics, and its own memory system — using the same eight programs
(re-calibrated to Table I standalone times on that platform).

The claim under test is *method* generality: the HCS pipeline (profiles →
space characterization → interpolation → greedy + refinement) must keep its
ordering against the baselines without touching a single algorithm knob.
"""

from __future__ import annotations

from repro.hardware.calibration import (
    DEFAULT_POWER_CAP_W,
    make_amd_llano,
    make_ivy_bridge,
)
from repro.core.freqpolicy import Bias
from repro.core.runtime import CoScheduleRuntime
from repro.workload.program import make_jobs
from repro.workload.rodinia import rodinia_programs
from repro.experiments.common import ExperimentResult
from repro.util.tables import format_table


def _platform_row(processor, cap_w: float, n_random: int):
    jobs = make_jobs(rodinia_programs(processor))
    runtime = CoScheduleRuntime(jobs, processor=processor, cap_w=cap_w)
    base = runtime.random_average(n=n_random).mean_makespan_s
    return {
        "random_s": base,
        "default_c": base / runtime.run_default(bias=Bias.CPU).makespan_s,
        "default_g": base / runtime.run_default(bias=Bias.GPU).makespan_s,
        "hcs": base / runtime.run_hcs().makespan_s,
        "hcs+": base / runtime.run_hcs(refine=True).makespan_s,
        "bound": base / runtime.lower_bound_s(),
    }


def run(
    cap_w: float = DEFAULT_POWER_CAP_W, n_random: int = 10
) -> ExperimentResult:
    platforms = {
        "ivy-bridge-like": make_ivy_bridge(),
        "amd-llano-like": make_amd_llano(),
    }
    rows = []
    headline = {}
    for name, processor in platforms.items():
        stats = _platform_row(processor, cap_w, n_random)
        rows.append(
            (
                name,
                stats["random_s"],
                stats["default_c"],
                stats["default_g"],
                stats["hcs"],
                stats["hcs+"],
                stats["bound"],
            )
        )
        prefix = name.split("-")[0]
        for key in ("default_c", "default_g", "hcs", "hcs+"):
            headline[f"{prefix}_{key}_speedup"] = stats[key]

    result = ExperimentResult(
        name="crossplatform",
        title="The scheduling pipeline on two APU calibrations",
        headline=headline,
    )
    result.add_section(
        f"speedups over Random, 8 programs, {cap_w:.0f} W cap",
        format_table(
            ["platform", "random (s)", "default_c", "default_g",
             "hcs", "hcs+", "bound"],
            rows,
            ndigits=3,
        ),
    )
    return result
