"""Figure 2: standalone CPU vs GPU performance of four programs.

The paper's motivating measurement: streamcluster, cfd, and hotspot run
2.5x / 1.8x / 2.4x faster on the GPU, while dwt2d runs 2.5x faster on the
CPU.  Regenerated here from the calibrated profiles at maximum frequency.
"""

from __future__ import annotations

from repro.hardware.calibration import make_ivy_bridge
from repro.workload.rodinia import rodinia_programs
from repro.engine.standalone import standalone_run
from repro.experiments.common import ExperimentResult
from repro.util.asciiplot import bar_chart
from repro.util.tables import format_table

#: The four programs of the paper's Section III example, with the speedup
#: factors Figure 2 reports (GPU-over-CPU; dwt2d is CPU-preferred).
PAPER_SPEEDUPS = {
    "streamcluster": 2.5,
    "cfd": 1.8,
    "dwt2d": 1 / 2.5,
    "hotspot": 2.4,
}


def run() -> ExperimentResult:
    processor = make_ivy_bridge()
    programs = {p.name: p for p in rodinia_programs()}

    rows = []
    headline: dict[str, float] = {}
    labels, ratios = [], []
    for name, paper_ratio in PAPER_SPEEDUPS.items():
        prog = programs[name]
        t_cpu = standalone_run(prog, processor.cpu, processor.cpu.domain.fmax).time_s
        t_gpu = standalone_run(prog, processor.gpu, processor.gpu.domain.fmax).time_s
        ratio = t_cpu / t_gpu
        rows.append((name, t_cpu, t_gpu, ratio, paper_ratio))
        headline[f"{name}_gpu_speedup"] = ratio
        labels.append(name)
        ratios.append(ratio)

    result = ExperimentResult(
        name="fig2",
        title="Standalone performance of programs on CPU and on GPU",
        headline=headline,
    )
    result.add_section(
        "standalone times at max frequency",
        format_table(
            ["program", "cpu (s)", "gpu (s)", "cpu/gpu (measured)", "cpu/gpu (paper)"],
            rows,
        ),
    )
    result.add_section("GPU speedup over CPU", bar_chart(labels, ratios))
    return result
