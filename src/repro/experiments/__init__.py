"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes ``run(...) -> ExperimentResult`` and is registered in
:mod:`repro.experiments.registry`; ``python -m repro <name>`` renders the
result as text.  The drivers regenerate the same rows/series the paper
reports; EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.common import ExperimentResult, default_runtime
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "default_runtime",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
