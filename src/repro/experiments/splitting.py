"""Kernel-splitting check: is scheduling whole jobs the right scope?

Section II restricts schedules to whole jobs, citing evidence that
splitting one kernel across CPU and GPU usually loses to the better single
processor.  This experiment evaluates the best split ratio for every
calibrated program (including partition/merge overhead and the memory
contention the two halves inflict on each other) and reports who wins.
"""

from __future__ import annotations

from repro.core.splitting import best_split
from repro.experiments.common import ExperimentResult
from repro.hardware.calibration import make_ivy_bridge
from repro.workload.rodinia import rodinia_programs
from repro.util.tables import format_table


def run() -> ExperimentResult:
    processor = make_ivy_bridge()
    rows = []
    split_wins = 0
    free_split_wins = 0
    for profile in rodinia_programs():
        outcome = best_split(processor, profile)
        # Upper bound: communication-free splitting (sync cost zero) —
        # the most optimistic case for the fine-grained direction.
        free = best_split(processor, profile, sync_s_per_gb=0.0)
        rows.append(
            (
                outcome.program,
                outcome.best_alpha,
                outcome.split_makespan_s,
                outcome.single_makespan_s,
                str(outcome.single_kind),
                "split" if outcome.split_wins else "single",
                100 * free.gain,
            )
        )
        split_wins += outcome.split_wins
        free_split_wins += free.split_wins

    result = ExperimentResult(
        name="splitting",
        title="Kernel-level splitting vs whole-job placement",
        headline={
            "split_wins": float(split_wins),
            "free_split_wins": float(free_split_wins),
            "programs": 8.0,
        },
    )
    result.add_section(
        "best split ratio per program (alpha = CPU share)",
        format_table(
            ["program", "best alpha", "split (s)", "single (s)",
             "single dev", "winner", "free-split gain %"],
            rows,
        ),
    )
    result.add_section(
        "conclusion",
        f"With realistic partition/merge overhead, splitting beats the "
        f"better single processor for {split_wins} of 8 programs; even "
        f"with zero communication cost only {free_split_wins} of 8 gain, "
        "and modestly — the two halves contend with each other for memory "
        "bandwidth. The paper's whole-job scope (Section II, citing [31]) "
        "is justified.",
    )
    return result
