"""Table I: offline profiles and model-predicted minimum co-run times.

For each of the eight programs: the standalone CPU/GPU times at maximum
frequency (calibrated to the paper's numbers exactly), the co-run time with
the least-degrading partner as predicted by the performance model, and the
resulting processor preference (dwt2d CPU-preferred, lud non-preferred, the
rest GPU-preferred).
"""

from __future__ import annotations

from repro.hardware.device import DeviceKind
from repro.workload.rodinia import RODINIA_NAMES, TABLE1_STANDALONE
from repro.experiments.common import ExperimentResult, default_runtime
from repro.core.categorize import DEFAULT_THRESHOLD
from repro.util.tables import format_table

#: The preference row of the paper's Table I.
PAPER_PREFERENCE = {
    "streamcluster": "GPU",
    "cfd": "GPU",
    "dwt2d": "CPU",
    "hotspot": "GPU",
    "srad": "GPU",
    "lud": "Non",
    "leukocyte": "GPU",
    "heartwall": "GPU",
}


def _min_corun_time(predictor, uid: str, kind: DeviceKind, setting) -> float:
    """Predicted co-run time with the least-degrading partner."""
    best = float("inf")
    for other in predictor.table.uids:
        if other == uid:
            continue
        if kind is DeviceKind.CPU:
            t, _ = predictor.corun_times(uid, other, setting)
        else:
            _, t = predictor.corun_times(other, uid, setting)
        best = min(best, t)
    return best


def _preference(t_cpu: float, t_gpu: float, threshold: float) -> str:
    if abs(t_cpu - t_gpu) / min(t_cpu, t_gpu) <= threshold:
        return "Non"
    return "CPU" if t_cpu < t_gpu else "GPU"


def run() -> ExperimentResult:
    runtime = default_runtime()
    predictor = runtime.predictor
    setting = runtime.processor.max_setting

    rows = []
    headline = {}
    matches = 0
    for name in RODINIA_NAMES:
        t_cpu = predictor.solo_time(name, DeviceKind.CPU, setting.cpu_ghz)
        t_gpu = predictor.solo_time(name, DeviceKind.GPU, setting.gpu_ghz)
        co_cpu = _min_corun_time(predictor, name, DeviceKind.CPU, setting)
        co_gpu = _min_corun_time(predictor, name, DeviceKind.GPU, setting)
        pref = _preference(t_cpu, t_gpu, DEFAULT_THRESHOLD)
        paper_cpu, paper_gpu = TABLE1_STANDALONE[name]
        rows.append(
            (name, co_cpu, co_gpu, t_cpu, paper_cpu, t_gpu, paper_gpu,
             f"{pref}/{PAPER_PREFERENCE[name]}")
        )
        matches += pref == PAPER_PREFERENCE[name]
        headline[f"{name}_pref_match"] = float(pref == PAPER_PREFERENCE[name])
    headline["preference_matches"] = float(matches)

    result = ExperimentResult(
        name="table1",
        title="Standalone and minimum co-run execution times",
        headline=headline,
    )
    result.add_section(
        "Table I (ours vs paper; preference shown ours/paper)",
        format_table(
            ["program", "min co-run cpu", "min co-run gpu",
             "cpu s", "paper", "gpu s", "paper", "pref"],
            rows,
        ),
    )
    return result
