"""The Section III motivating example.

Three observations are reproduced:

1. co-running dwt2d (CPU) with streamcluster (GPU) slows dwt2d by ~81% and
   streamcluster by ~5%;
2. pairing dwt2d with hotspot instead drops dwt2d's slowdown to ~17%
   (hotspot loses ~5%) — pairing matters;
3. across all co-schedules of the four programs under a 15 W cap, the best
   frequency-aware co-schedule beats the worst by ~2.3x.
"""

from __future__ import annotations

import itertools

from repro.hardware.calibration import DEFAULT_POWER_CAP_W, make_ivy_bridge
from repro.hardware.device import DeviceKind
from repro.workload.program import make_jobs
from repro.workload.rodinia import rodinia_programs
from repro.engine.corun import steady_degradation
from repro.engine.sim import Scenario, run as engine_run
from repro.model.characterize import characterize_space
from repro.model.predictor import CoRunPredictor
from repro.model.profiler import profile_workload
from repro.experiments.common import ExperimentResult
from repro.util.tables import format_table

EXAMPLE_PROGRAMS = ("streamcluster", "cfd", "dwt2d", "hotspot")


def _pair_table(processor, programs) -> tuple[str, dict[str, float]]:
    smax = processor.max_setting
    cases = [
        ("dwt2d", "streamcluster", 0.81, 0.05),
        ("dwt2d", "hotspot", 0.17, 0.05),
    ]
    rows = []
    headline = {}
    for cpu_name, gpu_name, paper_cpu, paper_gpu in cases:
        d_cpu = steady_degradation(
            processor, programs[cpu_name], DeviceKind.CPU, programs[gpu_name], smax
        )
        d_gpu = steady_degradation(
            processor, programs[gpu_name], DeviceKind.GPU, programs[cpu_name], smax
        )
        rows.append(
            (f"{cpu_name}(CPU) + {gpu_name}(GPU)",
             100 * d_cpu, 100 * paper_cpu, 100 * d_gpu, 100 * paper_gpu)
        )
        headline[f"{cpu_name}_vs_{gpu_name}_cpu_slowdown"] = d_cpu
        headline[f"{cpu_name}_vs_{gpu_name}_gpu_slowdown"] = d_gpu
    table = format_table(
        ["co-run pair", "cpu slow %", "paper %", "gpu slow %", "paper %"], rows,
        ndigits=1,
    )
    return table, headline


def _best_worst_schedules(cap_w: float) -> tuple[float, float, float]:
    """Enumerate 4-program co-schedules x cap-feasible settings.

    A candidate pairs the four programs into two (CPU, GPU) co-run slots
    that execute back to back, with one cap-feasible frequency setting per
    slot (best or worst per slot, matching the paper's enumeration of
    frequency settings).  Returns (best, worst, ratio).
    """
    processor = make_ivy_bridge()
    programs = [p for p in rodinia_programs() if p.name in EXAMPLE_PROGRAMS]
    jobs = {j.uid: j for j in make_jobs(programs)}
    table = profile_workload(processor, list(jobs.values()))
    predictor = CoRunPredictor(processor, table, characterize_space(processor))

    names = list(jobs)
    best = float("inf")
    worst = 0.0
    for perm in itertools.permutations(names):
        slots = [(perm[0], perm[1]), (perm[2], perm[3])]  # (cpu, gpu) pairs
        per_slot_settings = []
        feasible_ok = True
        for cpu_uid, gpu_uid in slots:
            feasible = predictor.feasible_pair_settings(cpu_uid, gpu_uid, cap_w)
            if not feasible:
                feasible_ok = False
                break
            per_slot_settings.append(feasible)
        if not feasible_ok:
            continue
        for choose in ("best", "worst"):
            fixed = {}
            for (cpu_uid, gpu_uid), feas in zip(slots, per_slot_settings):
                key_fn = lambda s: sum(
                    predictor.corun_times(cpu_uid, gpu_uid, s)
                )
                fixed[(cpu_uid, gpu_uid)] = (
                    min(feas, key=key_fn) if choose == "best" else max(feas, key=key_fn)
                )

            def governor(cpu_job, gpu_job):
                for (c, g), s in fixed.items():
                    if cpu_job is not None and cpu_job.uid == c:
                        return s
                    if gpu_job is not None and gpu_job.uid == g:
                        return s
                return processor.min_setting

            execution = engine_run(
                processor,
                Scenario.from_queues(
                    [jobs[slots[0][0]], jobs[slots[1][0]]],
                    [jobs[slots[0][1]], jobs[slots[1][1]]],
                ),
                governor=governor,
            )
            if choose == "best":
                best = min(best, execution.makespan_s)
            else:
                worst = max(worst, execution.makespan_s)
    return best, worst, worst / best


def run(cap_w: float = DEFAULT_POWER_CAP_W) -> ExperimentResult:
    processor = make_ivy_bridge()
    programs = {p.name: p for p in rodinia_programs()}

    table, headline = _pair_table(processor, programs)
    best, worst, ratio = _best_worst_schedules(cap_w)
    headline["best_makespan_s"] = best
    headline["worst_makespan_s"] = worst
    headline["worst_over_best"] = ratio

    result = ExperimentResult(
        name="sec3",
        title="Section III motivating example",
        headline=headline,
    )
    result.add_section("pairing matters (steady co-run slowdowns)", table)
    result.add_section(
        f"frequency/pairing enumeration under {cap_w:.0f} W",
        f"best co-schedule makespan : {best:.1f} s\n"
        f"worst co-schedule makespan: {worst:.1f} s\n"
        f"worst/best ratio          : {ratio:.2f}x   (paper: ~2.3x)",
    )
    return result
