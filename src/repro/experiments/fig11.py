"""Figure 11: the 16-program scalability study.

Two differently sized instances of each program, 15 W cap.  The paper's
qualitative result — and the crossover this experiment must reproduce —
is that both Default variants now fall *below* Random (−21% / −9%; the
time-shared CPU partition pays context-switch and locality penalties),
while HCS gains ~35% and HCS+ ~37%, landing ~15% away from the bound.
"""

from __future__ import annotations

from repro.hardware.calibration import DEFAULT_POWER_CAP_W
from repro.experiments.common import ExperimentResult
from repro.experiments.fig10 import run as _run_fig10

#: Paper-reported speedups over Random (Figure 11).
PAPER_SPEEDUPS = {
    "default_c": 0.79,
    "default_g": 0.91,
    "hcs": 1.35,
    "hcs+": 1.37,
}


def run(cap_w: float = DEFAULT_POWER_CAP_W, n_random: int = 20) -> ExperimentResult:
    result = _run_fig10(
        cap_w,
        instances=2,
        n_random=n_random,
        name="fig11",
        paper_speedups=PAPER_SPEEDUPS,
    )
    # Annotate with the Figure 11 paper numbers and the crossover check.
    crossover = (
        result.headline["default_c_speedup"] < 1.0
        and result.headline["default_g_speedup"] < 1.0
    )
    result.headline["defaults_below_random"] = float(crossover)
    result.add_section(
        "crossover check",
        "Both Default variants fall below Random: "
        + ("YES (matches the paper)" if crossover else "NO (paper says they should)")
        + f"\npaper speedups: {PAPER_SPEEDUPS}",
    )
    return result
