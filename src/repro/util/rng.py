"""Deterministic random-number handling.

Every stochastic component in the library (random scheduler baseline, random
swap refinement, synthetic workload generation) takes either an integer seed
or a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the same seed always regenerates the same paper
figure rows.
"""

from __future__ import annotations

import numpy as np

#: Seed used by experiment drivers when the caller does not supply one.
DEFAULT_SEED = 20170529  # IPDPS 2017 conference start date


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to :data:`DEFAULT_SEED` (not to OS entropy) so that library
    defaults stay reproducible.  An existing generator is passed through
    unchanged, which lets callers thread one RNG through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    # repro: noqa REP002 -- this IS the sanctioned wrapper REP002 points at
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used when an experiment fans out over repetitions (e.g. the 20 random
    seeds of the Figure 10 Random baseline) and each repetition must be
    independent yet reproducible.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    # repro: noqa REP002 -- sanctioned wrapper: spawns from a seeded SeedSequence
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
