"""ASCII rendering of the paper's figures (histograms, surfaces, traces).

The reproduction runs in a terminal with no display, so each figure is also
emitted as a text sketch.  These functions are presentation-only; the numeric
series they draw are produced (and tested) elsewhere.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BAR = "#"
_SHADES = " .:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return "(empty chart)"
    vmax = max(max(values), 0.0)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = 0 if vmax == 0 else int(round(width * max(value, 0.0) / vmax))
        lines.append(f"{label.ljust(label_w)} |{_BAR * n} {value:.3g}{unit}")
    return "\n".join(lines)


def histogram(
    bin_labels: Sequence[str],
    fractions: Sequence[float],
    *,
    width: int = 40,
) -> str:
    """Error-histogram rendering used for Figures 7 and 8."""
    return bar_chart(bin_labels, [100.0 * f for f in fractions], width=width, unit="%")


def surface(
    grid: np.ndarray,
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Shade-mapped rendering of a 2-D surface (Figures 5 and 6).

    Row 0 is printed at the bottom so the axes read like the paper's 3-D
    plots: values grow up and to the right.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"surface expects a 2-D grid, got shape {grid.shape}")
    lo, hi = float(grid.min()), float(grid.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    if title:
        lines.append(title)
    for i in range(grid.shape[0] - 1, -1, -1):
        row = grid[i]
        shades = "".join(
            _SHADES[min(int((v - lo) / span * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            for v in row
        )
        lines.append(f"{y_label}[{i:2d}] |{shades}|")
    lines.append(f"       +{'-' * grid.shape[1]}+  ({x_label} increases to the right)")
    lines.append(f"shade scale: min={lo:.3g}  max={hi:.3g}")
    return "\n".join(lines)


def line_trace(
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    cap: float | None = None,
) -> str:
    """Multi-series time trace (Figure 9) as a character raster.

    Each series gets the first letter of its name as the plot symbol; an
    optional horizontal ``cap`` line is drawn with ``-``.
    """
    if not series:
        return "(no series)"
    length = max(len(v) for v in series.values())
    all_vals = [v for vals in series.values() for v in vals]
    if cap is not None:
        all_vals.append(cap)
    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo if hi > lo else 1.0
    raster = [[" "] * length for _ in range(height)]

    def row_of(value: float) -> int:
        return min(int((value - lo) / span * (height - 1)), height - 1)

    if cap is not None:
        r = row_of(cap)
        raster[r] = ["-"] * length
    for name, vals in series.items():
        sym = name[0].upper()
        for t, v in enumerate(vals):
            raster[row_of(v)][t] = sym
    lines = []
    for r in range(height - 1, -1, -1):
        level = lo + span * r / (height - 1)
        lines.append(f"{level:7.2f} |" + "".join(raster[r]))
    lines.append(" " * 8 + "+" + "-" * length + "> time (s)")
    legend = "  ".join(f"{name[0].upper()}={name}" for name in series)
    if cap is not None:
        legend += f"  ---=cap({cap:g} W)"
    lines.append("         " + legend)
    return "\n".join(lines)
