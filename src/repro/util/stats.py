"""Small statistics helpers used by the model-accuracy and speedup experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def relative_error(predicted: float, actual: float) -> float:
    """Relative error ``|predicted - actual| / |actual|``.

    The paper's Figures 7 and 8 report model accuracy as the relative error of
    the predicted degradation (resp. power) against the measured one.  When
    ``actual`` is zero the error is defined as ``|predicted|`` (absolute), so a
    perfect prediction of "no degradation" scores zero instead of NaN.
    """
    if actual == 0.0:
        return abs(predicted)
    return abs(predicted - actual) / abs(actual)


def pct_error(predicted: float, actual: float) -> float:
    """Relative error expressed in percent."""
    return 100.0 * relative_error(predicted, actual)


def mean_abs_pct_error(predicted, actual) -> float:
    """Mean absolute percentage error over paired sequences."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    if predicted.size == 0:
        raise ValueError("cannot compute error of empty sequences")
    errs = [pct_error(p, a) for p, a in zip(predicted.ravel(), actual.ravel())]
    return float(np.mean(errs))


def geomean(values) -> float:
    """Geometric mean, the conventional aggregate for speedup ratios."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def histogram_bins(values, edges) -> np.ndarray:
    """Fraction of ``values`` falling into each ``[edges[i], edges[i+1])`` bin.

    The final bin is open to the right (everything ``>= edges[-2]`` lands in
    it), matching the "> X%" tail bucket of the paper's error histograms.
    """
    values = np.asarray(values, dtype=float)
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least two entries")
    if values.size == 0:
        return np.zeros(edges.size - 1)
    counts, _ = np.histogram(np.clip(values, edges[0], np.nextafter(edges[-1], -np.inf)), bins=edges)
    return counts / values.size


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} median={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values) -> Summary:
    """Summarise a sample into a :class:`Summary`."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )
