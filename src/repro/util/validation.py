"""Argument-validation helpers.

The simulator is configured by many physical parameters; failing fast with a
named message beats propagating NaNs through a scheduling experiment.
"""

from __future__ import annotations

import math


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Require a finite float."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
