"""Shared utilities: RNG handling, statistics, table/plot rendering, validation.

These helpers are deliberately dependency-light (NumPy only) so every other
subpackage can use them without import cycles.
"""

from repro.util.rng import default_rng, spawn_rng
from repro.util.stats import (
    geomean,
    histogram_bins,
    mean_abs_pct_error,
    pct_error,
    relative_error,
    summarize,
)
from repro.util.tables import format_table, format_kv
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "default_rng",
    "spawn_rng",
    "geomean",
    "histogram_bins",
    "mean_abs_pct_error",
    "pct_error",
    "relative_error",
    "summarize",
    "format_table",
    "format_kv",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
]
