"""ASCII Gantt rendering of a measured schedule execution.

Turns the start/finish intervals of a :class:`ScheduleExecution` into a
per-job bar chart over a shared time axis — the quickest way to *see* a
co-schedule: which jobs overlapped, where a processor idled, and where the
solo tail began.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.tracing import JobCompletion

_BAR = {"cpu": "=", "gpu": "#"}


def render_gantt(
    completions: Sequence[JobCompletion],
    *,
    width: int = 72,
    makespan_s: float | None = None,
) -> str:
    """Render job intervals as ASCII bars.

    Jobs are grouped by processor (CPU rows first) and sorted by start
    time; the bar glyph encodes the processor (``=`` CPU, ``#`` GPU).
    """
    if not completions:
        return "(no completions)"
    horizon = makespan_s
    if horizon is None:
        horizon = max(c.finish_s for c in completions)
    if horizon <= 0:
        return "(zero-length execution)"

    label_w = max(len(c.job) for c in completions) + 7  # "<job> @cpu "
    lines = []
    ordered = sorted(
        completions, key=lambda c: (c.kind != "cpu", c.start_s, c.job)
    )
    for c in ordered:
        start_col = int(round(width * c.start_s / horizon))
        end_col = max(start_col + 1, int(round(width * c.finish_s / horizon)))
        end_col = min(end_col, width)
        glyph = _BAR.get(c.kind, "*")
        bar = " " * start_col + glyph * (end_col - start_col)
        label = f"{c.job} @{c.kind}".ljust(label_w)
        lines.append(f"{label}|{bar.ljust(width)}|")
    axis = " " * label_w + "+" + "-" * width + "+"
    scale = (
        " " * label_w
        + f"0s{' ' * (width - len(f'{horizon:.0f}s') - 2)}{horizon:.0f}s"
    )
    lines.append(axis)
    lines.append(scale)
    lines.append(" " * label_w + " (= CPU job, # GPU job)")
    return "\n".join(lines)
