"""Plain-text table rendering for experiment output.

Experiments print the same rows the paper's tables/figures report; these
helpers keep that output aligned and diff-friendly without pulling in any
formatting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def _fmt_cell(value: object, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    ndigits: int = 2,
    align_first_left: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_fmt_cell(c, ndigits) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            if j == 0 and align_first_left:
                parts.append(cell.ljust(widths[j]))
            else:
                parts.append(cell.rjust(widths[j]))
        return "  ".join(parts)

    lines = [fmt_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, object], *, ndigits: int = 3) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    lines = []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_fmt_cell(value, ndigits)}")
    return "\n".join(lines)
