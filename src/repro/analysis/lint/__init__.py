"""Repo-specific AST lint pack: ``python -m repro.analysis.lint``.

The rule engine lives in :mod:`repro.analysis.lint.engine`, the
REP001-REP011 catalog in :mod:`repro.analysis.lint.rules` (REP010/REP011
delegate to the :mod:`repro.analysis.dims` dataflow checker);
:func:`run_lint` is the programmatic entry point the CLI
(``repro analyze``) and the tests share.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.lint.engine import (
    Finding,
    LintRule,
    LintViolation,
    iter_source_files,
    parse_suppressions,
    run_rules,
)
from repro.analysis.lint.rules import ALL_RULES

#: Default lint surface when no paths are given (the whole repo: the
#: benchmark and example trees follow the same conventions as src).
DEFAULT_PATHS = ("src", "tests", "tools", "benchmarks", "examples")


def run_lint(
    paths: Sequence[str | Path] = DEFAULT_PATHS,
    *,
    select: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Run the full shipped rule set over ``paths``."""
    return run_rules(paths, ALL_RULES, select=select)


__all__ = [
    "ALL_RULES",
    "DEFAULT_PATHS",
    "Finding",
    "LintRule",
    "LintViolation",
    "iter_source_files",
    "parse_suppressions",
    "run_lint",
    "run_rules",
]
