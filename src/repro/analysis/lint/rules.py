"""The REP001-REP011 rule catalog (see docs/ANALYSIS.md for the rationale).

Each rule enforces a convention this codebase relies on for correctness but
that nothing machine-checked before:

* REP001 — schedulers accept a ``SchedulingContext``, not raw
  ``(predictor, jobs, cap_w)`` plumbing (outside ``repro.core`` itself).
* REP002 — randomness flows through ``repro.util.rng`` / ``ctx.rng()``,
  never the process-global ``random`` / ``numpy.random`` state.
* REP003 — no float ``==`` / ``!=`` on makespan/energy/power expressions;
  compare with a tolerance (exact-zero and identity-vs-string compares are
  exempt; byte-identical memoization checks carry a ``noqa``).
* REP004 — production code evaluates schedules through the memoizing
  evaluator (``ctx.score`` / ``ctx.metrics``), not the raw replay
  functions, so the EvalCache sees every query.
* REP005 — public methods of lock-owning service classes mutate shared
  state only under ``with <lock>:``.
* REP006 — ``repro.engine`` runs on the simulated timeline; wall-clock
  calls are banned there.
* REP007 — executions go through the unified ``engine.run()`` entry
  point; the removed ``execute_*`` shims must not be reintroduced.
* REP008 — durable job-store state changes flow through the event-log
  API (``commit``/``flush``/``fold``); no other store/service module may
  reach into a store's ``_state`` / ``_log`` internals directly.
* REP009 — production code reads a context's power cap through
  ``repro.core.feasibility.context_cap`` (or the fleet API), never raw
  ``ctx.cap_w`` attribute plumbing: on a multi-node fleet context the
  scalar alias is meaningless, and ``context_cap`` is where that is
  enforced.
* REP010 — dimensional consistency of watts/joules/seconds arithmetic:
  the :mod:`repro.analysis.dims` dataflow pass flags cross-dimension
  add/compare, ``power_scale`` applied twice, and products whose
  dimension contradicts the name they flow into.
* REP011 — the two time dimensions stay apart: native (scaled-node)
  seconds never meet wall seconds without the sanctioned
  ``/ speed_scale`` conversion, and the conversion is applied exactly
  once, in the right direction.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from collections.abc import Iterator

from repro.analysis.lint.engine import (
    Finding,
    LintRule,
    is_test_path,
    path_in_layer,
)

#: Identifier substrings that mark an expression as a physical metric.
_METRIC_RE = re.compile(r"makespan|energy|power|edp")

#: Wall-clock callables banned from the engine layer.
_WALL_CLOCK_TIME_FNS = {"time", "monotonic", "perf_counter", "process_time"}
_WALL_CLOCK_DT_FNS = {"now", "utcnow", "today"}

#: Lock-like constructors that mark an attribute as a lock.
_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _dotted(node: ast.expr) -> tuple[str, ...]:
    """The dotted-name chain of a Name/Attribute expression (else empty)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = fn.args
    return {p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)}


class RawPlumbingRule(LintRule):
    code = "REP001"
    title = "raw (predictor, jobs, cap_w) plumbing outside repro.core"
    rationale = (
        "PR 3 unified every scheduler behind SchedulingContext; a function "
        "re-growing the legacy triple re-opens the drift the context closed "
        "(mismatched governors, unshared caches, unseeded RNGs)."
    )

    _TRIPLE = {"predictor", "jobs", "cap_w"}

    def applies_to(self, path: PurePath) -> bool:
        return not (
            path_in_layer(path, "core") or path_in_layer(path, "analysis")
        )

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._TRIPLE <= _param_names(node):
                    yield Finding(
                        node,
                        f"function {node.name!r} takes raw (predictor, jobs,"
                        " cap_w) plumbing; accept a SchedulingContext",
                    )


class DefaultRngRule(LintRule):
    code = "REP002"
    title = "process-global RNG use"
    rationale = (
        "Reproducibility is a headline property of the reproduction: every "
        "stochastic path must draw from util.rng.default_rng / ctx.rng() so "
        "a seed replays the identical schedule."
    )

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield Finding(
                            node,
                            "stdlib 'random' is process-global and unseeded"
                            " here; use repro.util.rng.default_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield Finding(
                        node,
                        "stdlib 'random' is process-global and unseeded"
                        " here; use repro.util.rng.default_rng",
                    )
            elif isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if (
                    len(chain) >= 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                ):
                    yield Finding(
                        node,
                        f"direct {'.'.join(chain)}() call; route randomness"
                        " through repro.util.rng (default_rng / spawn_rng)"
                        " or ctx.rng()",
                    )


class FloatEqualityRule(LintRule):
    code = "REP003"
    title = "float ==/!= on a makespan/energy/power expression"
    rationale = (
        "Predicted metrics are floats built from long reduction chains;"
        " exact comparison encodes an accident of summation order. Compare"
        " with pytest.approx / math.isclose, except for exact-zero and"
        " deliberately byte-identical memoization contracts."
    )

    @staticmethod
    def _is_tolerant_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _dotted(node.func)
        return bool(chain) and chain[-1] in ("approx", "isclose")

    @staticmethod
    def _is_exempt_constant(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and (
            isinstance(node.value, (str, bytes))
            or node.value is None
            or (
                isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)
                and node.value == 0
            )
        )

    @classmethod
    def _mentions_metric(cls, node: ast.expr) -> bool:
        """Is the *value* of this operand a metric quantity?

        Looks at the operand's head — the final attribute, name, or called
        function — not at receivers along the way, so
        ``energy_state.metrics.rejected == 1`` (an int counter on an
        energy-objective fixture) is not a metric comparison while
        ``execution.energy_j == x`` is.  Boolean-valued operands
        (comparisons, ``and``/``or``/``not``) are never metrics.
        """
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return False
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return False
            return cls._mentions_metric(node.operand)
        if isinstance(node, ast.BinOp):
            return cls._mentions_metric(node.left) or cls._mentions_metric(
                node.right
            )
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            return bool(chain) and bool(_METRIC_RE.search(chain[-1]))
        if isinstance(node, ast.Attribute):
            return bool(_METRIC_RE.search(node.attr))
        if isinstance(node, ast.Name):
            return bool(_METRIC_RE.search(node.id))
        return False

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_tolerant_call(o) for o in operands):
                continue
            if any(self._is_exempt_constant(o) for o in operands):
                continue
            if any(self._mentions_metric(o) for o in operands):
                yield Finding(
                    node,
                    "exact float comparison on a makespan/energy/power"
                    " expression; use pytest.approx or math.isclose",
                )


class RawReplayRule(LintRule):
    code = "REP004"
    title = "raw schedule replay outside the perf evaluator layer"
    rationale = (
        "predicted_makespan/predicted_metrics bypass the EvalCache; calling"
        " them directly in production code forfeits memoization and lets"
        " scores drift from what the schedulers actually minimized. Use"
        " ctx.score/ctx.metrics or a ScheduleEvaluator."
    )

    _RAW = {"predicted_makespan", "predicted_metrics"}

    def applies_to(self, path: PurePath) -> bool:
        if is_test_path(path):
            return False  # spec tests pin the raw replay on purpose
        if path_in_layer(path, "perf") or path_in_layer(path, "analysis"):
            return False
        return not (path_in_layer(path, "core") and path.name == "schedule.py")

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._RAW
            ):
                yield Finding(
                    node,
                    f"direct {node.func.id}() call bypasses the EvalCache;"
                    " use ctx.score()/ctx.metrics() or a ScheduleEvaluator",
                )


class UnlockedServiceStateRule(LintRule):
    code = "REP005"
    title = "service-layer shared state mutated outside a lock"
    rationale = (
        "The daemon's correctness model is a single writer: public methods"
        " of lock-owning classes must take the lock before touching shared"
        " attributes (private helpers are assumed to be called under it)."
    )

    def applies_to(self, path: PurePath) -> bool:
        return path_in_layer(path, "service")

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = _dotted(node.value.func)
                if chain and chain[-1] in _LOCK_CTORS:
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            names.add(target.attr)
        return names

    @classmethod
    def _with_takes_lock(cls, node: ast.With, locks: set[str]) -> bool:
        for item in node.items:
            for sub in ast.walk(item.context_expr):
                if isinstance(sub, ast.Attribute) and sub.attr in locks:
                    return True
        return False

    def _scan(
        self, body: list[ast.stmt], locks: set[str], locked: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.With) and self._with_takes_lock(stmt, locks):
                continue  # everything inside holds the lock
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not locked
                ):
                    yield Finding(
                        stmt,
                        f"'self.{target.attr}' mutated outside a 'with"
                        " <lock>:' block in a public method of a"
                        " lock-owning class",
                    )
            # Recurse into nested statement lists (if/for/try/while bodies).
            for field_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(field_body, list):
                    yield from self._scan(field_body, locks, locked)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._scan(handler.body, locks, locked)

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = self._lock_attrs(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name.startswith("_"):
                    continue  # private helpers run under the caller's lock
                yield from self._scan(method.body, locks, locked=False)


class EngineWallClockRule(LintRule):
    code = "REP006"
    title = "wall-clock time inside repro.engine"
    rationale = (
        "The engine is a deterministic virtual-time simulator; a wall-clock"
        " read makes results machine- and load-dependent. Thread the"
        " simulated timeline instead."
    )

    def applies_to(self, path: PurePath) -> bool:
        return path_in_layer(path, "engine")

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    a.name
                    for a in node.names
                    if a.name in _WALL_CLOCK_TIME_FNS
                )
                if bad:
                    yield Finding(
                        node,
                        f"wall-clock import ({', '.join(bad)}) in engine"
                        " code; use the simulated timeline",
                    )
            elif isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if (
                    len(chain) == 2
                    and chain[0] == "time"
                    and chain[1] in _WALL_CLOCK_TIME_FNS
                ):
                    yield Finding(
                        node,
                        f"wall-clock call {'.'.join(chain)}() in engine"
                        " code; use the simulated timeline",
                    )
                elif (
                    len(chain) >= 2
                    and "datetime" in chain
                    and chain[-1] in _WALL_CLOCK_DT_FNS
                ):
                    yield Finding(
                        node,
                        f"wall-clock call {'.'.join(chain)}() in engine"
                        " code; use the simulated timeline",
                    )


class DeprecatedExecutorRule(LintRule):
    code = "REP007"
    title = "call to a removed execute_* engine shim"
    rationale = (
        "engine.run() replaced execute_schedule/execute_online/"
        "execute_with_arrivals/execute_default_schedule; the deprecation"
        " shims have completed their one-release grace period and are"
        " gone, so a call site is either dead code or a reintroduction of"
        " the pre-Scenario surface. Build a Scenario and call"
        " engine.run()."
    )

    _SHIMS = {
        "execute_schedule",
        "execute_online",
        "execute_with_arrivals",
        "execute_default_schedule",
    }

    def applies_to(self, path: PurePath) -> bool:
        # The shims no longer exist anywhere in src/, so no module is
        # exempt; tests stay out because the legacy reference copies
        # (tests/engine/_reference.py) deliberately keep the old names.
        return not is_test_path(path)

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if chain and chain[-1] in self._SHIMS:
                    yield Finding(
                        node,
                        f"removed {chain[-1]}() shim called; build a"
                        " Scenario and call repro.engine.run()",
                    )


class StoreBypassRule(LintRule):
    code = "REP008"
    title = "job-store internals touched outside the event-log API"
    rationale = (
        "Crash recovery replays the event log into a fresh fold; any state"
        " reached by mutating a store's '_state' or '_log' directly never"
        " hits the log, so it silently evaporates on restart and breaks"
        " the snapshot+suffix == full-replay invariant. Emit an event and"
        " commit()/flush() it instead."
    )

    #: Internals of :class:`repro.store.store.JobStore` (and its event
    #: logs) that only the store's own module may touch.
    _INTERNALS = {"_state", "_log"}
    #: The event-log API's home modules: the only place the internals are
    #: legitimately the receiver's own representation.
    _HOMES = {"store.py", "log.py"}

    def applies_to(self, path: PurePath) -> bool:
        if is_test_path(path):
            return False
        if path_in_layer(path, "store"):
            return path.name not in self._HOMES
        return path_in_layer(path, "service")

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._INTERNALS
            ):
                # A class touching its *own* private attribute is fine
                # (that is just normal encapsulation); reaching through
                # another object — `store._state`, `self.store._log` — is
                # the bypass this rule exists for.
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                yield Finding(
                    node,
                    f"'{node.attr}' of another object accessed directly;"
                    " job-store state changes must go through the"
                    " event-log API (commit an event and flush)",
                )


class RawContextCapRule(LintRule):
    code = "REP009"
    title = "raw ctx.cap_w read outside the feasibility/fleet layer"
    rationale = (
        "The fleet refactor made cap_w a single-node *alias*: on a"
        " multi-node context it is None and per-node caps live on the"
        " fleet. context_cap(ctx) is the sanctioned accessor — it returns"
        " the scalar cap where one exists and raises loudly where code"
        " silently assuming one scalar cap would miscompute. A raw"
        " ctx.cap_w read bypasses that tripwire."
    )

    #: The only modules allowed to touch the attribute directly: the
    #: accessor's own home and the fleet model that defines the caps.
    _HOMES = {"feasibility.py", "fleet.py"}

    @staticmethod
    def _is_ctx_name(name: str) -> bool:
        return "ctx" in name or name == "context"

    def applies_to(self, path: PurePath) -> bool:
        if is_test_path(path):
            return False  # tests pin the compat alias on purpose
        if path_in_layer(path, "core") and path.name in self._HOMES:
            return False
        return True

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Attribute) and node.attr == "cap_w"
            ):
                continue
            chain = _dotted(node.value)
            # `ctx.cap_w`, `nctx.cap_w`, `self.ctx.cap_w`, `sub_ctx.cap_w`
            # — anything whose receiver reads like a scheduling context.
            # `self.cap_w` / `fleet.cap_w` / `node.cap_w` are not contexts.
            if chain and self._is_ctx_name(chain[-1]):
                yield Finding(
                    node,
                    f"raw '{'.'.join(chain)}.cap_w' read; use"
                    " repro.core.feasibility.context_cap(ctx) (fleet-aware"
                    " and loud on multi-node contexts)",
                )


class _DimsRuleBase(LintRule):
    """Shared plumbing for the two dims-checker surfaces.

    The heavy lifting lives in :mod:`repro.analysis.dims`; these rules
    adapt its findings to the engine so path scoping, ``--select``, and
    ``# repro: noqa`` suppressions work unchanged.  Both rules run the
    (memoized) analysis once per module and keep the findings matching
    their own code.
    """

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        from repro.analysis.dims import check_module_cached

        for finding in check_module_cached(tree, path):
            if finding.code == self.code:
                yield Finding(finding.node, finding.message)


class DimensionMismatchRule(_DimsRuleBase):
    code = "REP010"
    title = "cross-dimension watts/joules/seconds arithmetic"
    rationale = (
        "The paper's contract is dimensional: caps in watts, energy in"
        " joules, spans in seconds. The dims dataflow pass propagates"
        " dimensions from repro.units annotations and the *_w/*_j/*_s"
        " naming conventions; adding or comparing across dimensions"
        " (cap_w vs energy_j), double-applying power_scale, or storing a"
        " W x s product under a watts name is a silent correctness bug"
        " the runtime sanitizer only catches when a cap happens to be"
        " violated."
    )


class WallNativeTimeRule(_DimsRuleBase):
    code = "REP011"
    title = "native/wall seconds mixed or speed_scale misapplied"
    rationale = (
        "The fleet layer runs two clocks: a scaled node's native seconds"
        " and the fleet-wide wall clock, related by wall = native /"
        " speed_scale. Mixing the flavors without that division — or"
        " applying it twice, or in the wrong direction — silently skews"
        " every cross-node makespan, deadline, and migration decision;"
        " convert through repro.units.wall_from_native/native_from_wall."
    )


#: The dimensional-analysis subset (``python -m repro.analysis.dims``).
DIMS_RULES: tuple[LintRule, ...] = (
    DimensionMismatchRule(),
    WallNativeTimeRule(),
)

#: The shipped rule set, in catalog order.
ALL_RULES: tuple[LintRule, ...] = (
    RawPlumbingRule(),
    DefaultRngRule(),
    FloatEqualityRule(),
    RawReplayRule(),
    UnlockedServiceStateRule(),
    EngineWallClockRule(),
    DeprecatedExecutorRule(),
    StoreBypassRule(),
    RawContextCapRule(),
    *DIMS_RULES,
)
