"""CLI for the lint pack: ``python -m repro.analysis.lint [paths ...]``.

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.lint import ALL_RULES, DEFAULT_PATHS, run_lint


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=(
            "Run the repro-specific AST lint rules (REP001-REP011) over "
            "source trees. See docs/ANALYSIS.md for the rule catalog and "
            "the '# repro: noqa REPxxx' suppression syntax."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATH",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.title}")
            rationale = " ".join(rule.rationale.split())
            if rationale:
                print(f"        {rationale}")
        return 0
    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select is not None
        else None
    )
    try:
        violations = run_lint(args.paths, select=select)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"\n{len(violations)} violation(s) across "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
