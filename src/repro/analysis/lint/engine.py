"""AST-visitor rule engine for the repo-specific lint pack.

Rules are small classes: a ``code`` (``REPxxx``), a one-line ``title``, a
``rationale``, an optional path scope (:meth:`LintRule.applies_to`), and a
:meth:`LintRule.findings` generator over a parsed module.  The engine owns
everything else — file discovery, parsing, suppression handling, ordering.

Suppression syntax (part of the engine, honoured by every rule)::

    something_suspect()  # repro: noqa REP003 -- why this is intentional
    another_case()       # repro: noqa

    # repro: noqa REP002 -- a standalone comment suppresses the next line
    third_case()

A bare ``# repro: noqa`` silences every rule on that statement; listing
codes (comma- or space-separated) silences only those.  The comment may sit
on any physical line of the flagged statement, so multi-line constructs
don't force awkward placement; a comment-only line applies to the line
below it, keeping long justifications off the code line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePath
from collections.abc import Iterable, Iterator, Sequence

#: Matches the engine's suppression comment; group 1 holds the rule codes
#: (empty for a blanket suppression).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b[ \t]*((?:REP\d{3}[,\s]*)*)", re.IGNORECASE
)

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    "build",
    "dist",
}

#: Suppression marker meaning "all rules".
_ALL = "*"


@dataclass(frozen=True, order=True)
class LintViolation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


@dataclass(frozen=True)
class Finding:
    """A rule's raw hit, before suppression filtering."""

    node: ast.AST
    message: str


class LintRule:
    """Base class for one REPxxx rule."""

    code: str = "REP000"
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: PurePath) -> bool:
        """Path scope; override to restrict a rule to one layer."""
        return True

    def findings(self, tree: ast.Module, path: PurePath) -> Iterator[Finding]:
        """Yield hits for one parsed module."""
        raise NotImplementedError
        yield  # pragma: no cover


def _has_part_run(path: PurePath, *run: str) -> bool:
    """Do ``run`` appear as consecutive components of ``path``?"""
    parts = path.parts
    n = len(run)
    return any(parts[i : i + n] == run for i in range(len(parts) - n + 1))


def path_in_layer(path: PurePath, layer: str) -> bool:
    """Is ``path`` inside ``src/repro/<layer>/`` (tests/<layer> is not)?"""
    return _has_part_run(path, "repro", layer)


def is_test_path(path: PurePath) -> bool:
    """Is ``path`` test code (under ``tests/`` or a ``test_*.py`` file)?"""
    return "tests" in path.parts or path.name.startswith("test_")


def iter_source_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
    return sorted(out)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Per-line suppressed rule codes (``{"*"}`` for a bare noqa).

    A trailing noqa applies to its own line; a comment-*only* noqa line
    applies to the following line instead (so justifications can live
    above the code they excuse).
    """
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = {c.upper() for c in re.findall(r"REP\d{3}", m.group(1))}
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        table.setdefault(target, set()).update(codes if codes else {_ALL})
    return table


def _suppressed(
    node: ast.AST, code: str, suppressions: dict[int, set[str]]
) -> bool:
    start = getattr(node, "lineno", None)
    if start is None:
        return False
    end = getattr(node, "end_lineno", None) or start
    for lineno in range(start, end + 1):
        codes = suppressions.get(lineno)
        if codes is not None and (_ALL in codes or code in codes):
            return True
    return False


def run_rules(
    paths: Sequence[str | Path],
    rules: Iterable[LintRule],
    *,
    select: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Run ``rules`` over every Python file under ``paths``.

    ``select`` restricts to the given rule codes.  Unparseable files are
    reported as ``REP000`` violations rather than crashing the run.
    """
    chosen = list(rules)
    if select is not None:
        wanted = {c.upper() for c in select}
        unknown = wanted - {r.code for r in chosen}
        if unknown:
            raise ValueError(
                "unknown rule code(s): " + ", ".join(sorted(unknown))
            )
        chosen = [r for r in chosen if r.code in wanted]
    violations: list[LintViolation] = []
    for file in iter_source_files(paths):
        applicable = [r for r in chosen if r.applies_to(file)]
        if not applicable:
            continue
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            violations.append(
                LintViolation(
                    path=str(file),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        suppressions = parse_suppressions(source)
        for rule in applicable:
            for finding in rule.findings(tree, file):
                if _suppressed(finding.node, rule.code, suppressions):
                    continue
                violations.append(
                    LintViolation(
                        path=str(file),
                        line=getattr(finding.node, "lineno", 1),
                        col=getattr(finding.node, "col_offset", 0),
                        rule=rule.code,
                        message=finding.message,
                    )
                )
    return sorted(violations)
