"""Independent verification of the durable job store's event log.

The store's contract (:mod:`repro.store`) is that in-memory state is
*nothing but* a fold over the append-only event log: recovery loads the
last snapshot and replays the suffix, and the result must be
indistinguishable from refolding the whole log from scratch.  This module
checks that contract without trusting the store's own recovery path:

* :func:`verify_store_log` refolds the complete log independently and
  compares it against the snapshot-plus-suffix state the store would
  recover, then audits the raw event stream for lifecycle violations the
  fold's own validation could mask after a partial replay — a second
  ``JobCompleted`` for the same job, two ``JobSubmitted`` events claiming
  one idempotency key, admission/scheduling events for jobs the log never
  submitted, and completed/rejected counters that do not match a recount.
* :func:`verify_store` referees a live :class:`~repro.store.JobStore`:
  its in-memory state must equal the fold of its own flushed log plus the
  staged-but-unflushed suffix.  Divergence means something mutated store
  state outside the event API — the dynamic counterpart of the REP008
  lint rule.

Violations come back as the same structured
:class:`~repro.analysis.invariants.Violation` records the schedule and
execution verifiers use, so callers can report all problems at once;
:func:`check_store_log` raises
:class:`~repro.errors.ScheduleInvariantError` when any are found.

The store is imported lazily inside the verifier bodies so importing
:mod:`repro.analysis` (which the engine's sanitizer hooks do) never drags
in the service tier's persistence stack.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.errors import ScheduleInvariantError
from repro.analysis.invariants import Violation

#: Store-log invariant identifiers (the ``Violation.invariant`` vocabulary).
INVARIANT_STORE_REPLAY = "store-replay"
INVARIANT_STORE_TRANSITION = "store-transition"
INVARIANT_STORE_COMPLETION = "store-completion"
INVARIANT_STORE_IDEMPOTENCY = "store-idempotency"
INVARIANT_STORE_ACCOUNTING = "store-accounting"

STORE_INVARIANTS = (
    INVARIANT_STORE_REPLAY,
    INVARIANT_STORE_TRANSITION,
    INVARIANT_STORE_COMPLETION,
    INVARIANT_STORE_IDEMPOTENCY,
    INVARIANT_STORE_ACCOUNTING,
)


def _fold_all(log) -> tuple[object | None, int, list[Violation]]:
    """Refold the whole log from seq 0, reporting any illegal transition."""
    from repro.store import StoreIntegrityError
    from repro.store.store import StoreState

    state = StoreState()
    last_seq = 0
    for seq, event in log.replay(0):
        try:
            state.apply(event)
        except StoreIntegrityError as exc:
            return None, last_seq, [
                Violation(
                    INVARIANT_STORE_TRANSITION,
                    f"event {seq} does not fold onto the preceding log: {exc}",
                    {"seq": seq, "event": type(event).__name__},
                )
            ]
        last_seq = seq
    return state, last_seq, []


def _fold_recovered(log) -> tuple[object | None, list[Violation]]:
    """Fold the way recovery does: last snapshot plus the log suffix."""
    from repro.store import StoreIntegrityError
    from repro.store.store import StoreState

    loaded = log.load_snapshot()
    if loaded is None:
        state, after = StoreState(), 0
    else:
        after, payload = loaded
        if after > log.last_seq:
            return None, [
                Violation(
                    INVARIANT_STORE_REPLAY,
                    f"snapshot covers seq {after} but the log ends at "
                    f"{log.last_seq} — snapshot ahead of its own log",
                    {"snapshot_seq": after, "last_seq": log.last_seq},
                )
            ]
        state = StoreState.from_dict(payload)
    for seq, event in log.replay(after):
        try:
            state.apply(event)
        except StoreIntegrityError as exc:
            return None, [
                Violation(
                    INVARIANT_STORE_REPLAY,
                    f"log suffix does not fold onto the snapshot at event "
                    f"{seq}: {exc}",
                    {"seq": seq, "event": type(event).__name__},
                )
            ]
    return state, []


def _audit_stream(log) -> list[Violation]:
    """Recount lifecycle facts straight from the raw event stream."""
    from repro.store import JobCompleted, JobSubmitted

    out: list[Violation] = []
    submitted: set[str] = set()
    completions: Counter[str] = Counter()
    key_owners: dict[str, str] = {}
    for seq, event in log.replay(0):
        if isinstance(event, JobSubmitted):
            submitted.add(event.job_id)
            key = event.idempotency_key
            if key is not None:
                owner = key_owners.setdefault(key, event.job_id)
                if owner != event.job_id:
                    out.append(
                        Violation(
                            INVARIANT_STORE_IDEMPOTENCY,
                            f"idempotency key {key!r} claimed by both "
                            f"{owner!r} and {event.job_id!r}",
                            {"seq": seq, "key": key},
                        )
                    )
        elif isinstance(event, JobCompleted):
            completions[event.job_id] += 1
        job_id = getattr(event, "job_id", None)
        if job_id is not None and job_id not in submitted:
            out.append(
                Violation(
                    INVARIANT_STORE_TRANSITION,
                    f"event {seq} ({type(event).__name__}) references job "
                    f"{job_id!r} before any JobSubmitted",
                    {"seq": seq, "job_id": job_id},
                )
            )
    for job_id, count in sorted(completions.items()):
        if count > 1:
            out.append(
                Violation(
                    INVARIANT_STORE_COMPLETION,
                    f"job {job_id!r} completed {count} times — an "
                    f"acknowledged result was re-delivered",
                    {"job_id": job_id, "completions": count},
                )
            )
    return out


def _diff_states(full, recovered) -> list[Violation]:
    """Field-by-field comparison of two folds, reported per divergence."""
    out: list[Violation] = []
    full_d, rec_d = full.to_dict(), recovered.to_dict()
    for field in ("cap_w", "now_s", "completed", "rejected"):
        if full_d[field] != rec_d[field]:
            out.append(
                Violation(
                    INVARIANT_STORE_REPLAY,
                    f"snapshot+suffix recovery disagrees with a full refold "
                    f"on {field}: {rec_d[field]!r} != {full_d[field]!r}",
                    {"field": field},
                )
            )
    if full_d["idempotency"] != rec_d["idempotency"]:
        out.append(
            Violation(
                INVARIANT_STORE_REPLAY,
                "snapshot+suffix recovery disagrees with a full refold on "
                "the idempotency index",
                {"field": "idempotency"},
            )
        )
    all_ids = set(full_d["jobs"]) | set(rec_d["jobs"])
    for job_id in sorted(all_ids):
        if full_d["jobs"].get(job_id) != rec_d["jobs"].get(job_id):
            out.append(
                Violation(
                    INVARIANT_STORE_REPLAY,
                    f"snapshot+suffix recovery disagrees with a full refold "
                    f"on job {job_id!r}",
                    {
                        "job_id": job_id,
                        "full": full_d["jobs"].get(job_id),
                        "recovered": rec_d["jobs"].get(job_id),
                    },
                )
            )
    return out


def _audit_counters(state) -> list[Violation]:
    """The fold's running counters must survive an independent recount."""
    from repro.store.store import DONE, REJECTED

    out: list[Violation] = []
    done = sum(1 for j in state.jobs.values() if j.state == DONE)
    rejected = sum(1 for j in state.jobs.values() if j.state == REJECTED)
    if state.completed != done:
        out.append(
            Violation(
                INVARIANT_STORE_ACCOUNTING,
                f"completed counter says {state.completed} but "
                f"{done} jobs are in state 'done'",
                {"counter": state.completed, "recount": done},
            )
        )
    if state.rejected != rejected:
        out.append(
            Violation(
                INVARIANT_STORE_ACCOUNTING,
                f"rejected counter says {state.rejected} but "
                f"{rejected} jobs are in state 'rejected'",
                {"counter": state.rejected, "recount": rejected},
            )
        )
    for key, job_id in sorted(state.idempotency.items()):
        if job_id not in state.jobs:
            out.append(
                Violation(
                    INVARIANT_STORE_IDEMPOTENCY,
                    f"idempotency key {key!r} points at unknown job "
                    f"{job_id!r}",
                    {"key": key, "job_id": job_id},
                )
            )
    return out


def verify_store_log(log) -> list[Violation]:
    """Verify one shard's event log end to end.

    ``log`` is any :class:`~repro.store.EventLog`.  Returns every broken
    invariant (empty list = the log is sound): the full refold must
    succeed, snapshot+suffix recovery must reproduce it exactly, the raw
    stream must contain no double completions, no contested idempotency
    keys, and no events for never-submitted jobs, and the fold's counters
    must survive a recount.
    """
    full, _, violations = _fold_all(log)
    if violations:
        # The log itself is corrupt; the stream audit still runs so the
        # caller sees every independent problem, but state comparisons
        # are meaningless without a clean fold.
        return violations + _audit_stream(log)
    recovered, rec_violations = _fold_recovered(log)
    out = list(rec_violations)
    if recovered is not None:
        out.extend(_diff_states(full, recovered))
    out.extend(_audit_stream(log))
    out.extend(_audit_counters(full))
    return out


def verify_store_dir(durable_dir: str | Path, shards: int = 1) -> list[Violation]:
    """Open and verify every shard log under ``durable_dir``.

    Convenience wrapper for the durability e2e suite: violations from
    shard *n* carry ``{"shard": n}`` in their details.
    """
    from repro.store import open_log

    out: list[Violation] = []
    for shard in range(shards):
        log = open_log(durable_dir, shard)
        try:
            for v in verify_store_log(log):
                out.append(
                    Violation(
                        v.invariant, f"shard {shard}: {v.message}",
                        {**dict(v.details), "shard": shard},
                    )
                )
        finally:
            log.close()
    return out


def verify_store(store) -> list[Violation]:
    """Referee a live :class:`~repro.store.JobStore`.

    On top of the log checks, the store's in-memory state must equal the
    fold of its flushed log plus the staged (committed-but-unflushed)
    suffix.  Any divergence means state was mutated outside the event
    API — the dynamic counterpart of the REP008 lint rule.
    """
    out = verify_store_log(store.log)
    full, _, fold_violations = _fold_all(store.log)
    if full is not None and not fold_violations:
        from repro.store import StoreIntegrityError

        try:
            for event in store._pending:
                full.apply(event)
        except StoreIntegrityError as exc:
            out.append(
                Violation(
                    INVARIANT_STORE_TRANSITION,
                    f"staged (unflushed) events do not fold onto the "
                    f"durable log: {exc}",
                    {},
                )
            )
        else:
            for v in _diff_states(full, store.state):
                out.append(
                    Violation(
                        v.invariant,
                        v.message.replace(
                            "snapshot+suffix recovery",
                            "the store's in-memory state",
                        ),
                        v.details,
                    )
                )
    return out


def check_store_log(log, *, where: str = "store") -> None:
    """Raise :class:`ScheduleInvariantError` if ``log`` breaks an invariant."""
    violations = verify_store_log(log)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        if len(violations) > 5:
            summary += f"; ... {len(violations) - 5} more"
        raise ScheduleInvariantError(
            f"store log at {where} breaks {len(violations)} invariant(s): "
            f"{summary}",
            where=where,
            violations=tuple(violations),
        )
