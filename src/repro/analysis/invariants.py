"""Independent verification of the paper's Definition 2.1 invariants.

A valid co-schedule is a formal object: a true partition of the jobs into
the CPU queue, the GPU queue, and the solo tail; one frequency level per
device drawn from its discrete DVFS domain whenever work is running;
predicted chip power at or below the cap over every co-run interval; and a
makespan consistent with the degradation model and bounded below by the
paper's ``T_low``.  The schedulers in :mod:`repro.core` are *supposed* to
guarantee all of that — this module checks it without trusting any of
them.

:func:`verify_schedule` re-derives every invariant from first principles:
it replays the schedule's timeline with its own mean-field walker (not
:func:`repro.core.schedule.predicted_makespan`, and not the
:mod:`repro.core.feasibility` fast path), queries the predictor directly
for segment powers, and checks each governor-chosen frequency against the
processor's level sets.  Violations come back as structured
:class:`Violation` records rather than exceptions, so callers can report
all problems at once.

:func:`verify_execution` is the engine-side counterpart: it referees the
:class:`~repro.engine.sim.ExecutionResult` the event-driven core says
happened — per-device occupancy intervals that never overlap, completion
records consistent with each job's launch/resume chain (device changes
only where a migration record vouches for them), busy-time counters that
equal the summed timeline, and deadline-miss accounting that survives an
independent recount.

The **sanitizer** turns the verifiers into a tripwire: with
``REPRO_SANITIZE=1`` in the environment (or a context derived via
``ctx.with_sanitizer()``), every registry scheduler result, every
``refine`` pass, every ``engine.run()`` execution, and every
service-session batch is verified on the spot, and any violation raises
:class:`~repro.errors.ScheduleInvariantError` carrying the full violation
list.
"""

from __future__ import annotations

import math
import os
from collections import Counter
from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Iterator, Mapping

from repro.errors import InfeasibleCapError, ScheduleInvariantError
from repro.hardware.device import DeviceKind
from repro.hardware.frequency import FrequencySetting

#: Environment flag that arms the sanitizer globally.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Invariant identifiers (the ``Violation.invariant`` vocabulary).
INVARIANT_PARTITION = "partition"
INVARIANT_FREQUENCY = "frequency-domain"
INVARIANT_POWER_CAP = "power-cap"
INVARIANT_MAKESPAN = "makespan-consistency"
INVARIANT_LOWER_BOUND = "lower-bound"

ALL_INVARIANTS = (
    INVARIANT_PARTITION,
    INVARIANT_FREQUENCY,
    INVARIANT_POWER_CAP,
    INVARIANT_MAKESPAN,
    INVARIANT_LOWER_BOUND,
)

#: Fleet-level invariants (the :func:`verify_fleet_schedule` vocabulary):
#: the job partition across nodes, each node's own cap, and the shared
#: fleet budget swept over the union of per-node power timelines.
INVARIANT_FLEET_PARTITION = "fleet-partition"
INVARIANT_NODE_CAP = "node-power-cap"
INVARIANT_FLEET_BUDGET = "fleet-budget"

FLEET_INVARIANTS = (
    INVARIANT_FLEET_PARTITION,
    INVARIANT_NODE_CAP,
    INVARIANT_FLEET_BUDGET,
)

#: Execution-record invariants (the :func:`verify_execution` vocabulary) —
#: structural properties of an :class:`~repro.engine.sim.ExecutionResult`,
#: including preempted and migrated timelines the schedule-level verifier
#: cannot replay.
INVARIANT_EXEC_TIMELINE = "execution-timeline"
INVARIANT_EXEC_COMPLETION = "completion-consistency"
INVARIANT_EXEC_BUSY = "busy-accounting"
INVARIANT_EXEC_DEADLINE = "deadline-accounting"

EXECUTION_INVARIANTS = (
    INVARIANT_EXEC_TIMELINE,
    INVARIANT_EXEC_COMPLETION,
    INVARIANT_EXEC_BUSY,
    INVARIANT_EXEC_DEADLINE,
)

#: Relative tolerance for power/makespan/bound comparisons.  The verifier
#: replays the same *model* the schedulers used, so disagreements beyond
#: floating-point noise are real bugs; 1e-6 absorbs summation-order drift.
DEFAULT_REL_TOL = 1e-6

#: Remaining-work fraction below which a job counts as finished during the
#: replay (mirrors the scheduler-side replay's epsilon).
_EPS = 1e-12


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug it."""

    invariant: str
    message: str
    details: Mapping[str, object] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


@dataclass(frozen=True)
class _Segment:
    """One steady interval of the independent replay."""

    t0: float
    dt: float
    cpu_uid: str | None
    gpu_uid: str | None
    setting: FrequencySetting


def env_sanitizer_enabled() -> bool:
    """Is the process-wide ``REPRO_SANITIZE`` flag armed?"""
    value = os.environ.get(SANITIZE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def sanitizer_enabled(ctx=None) -> bool:
    """Is the sanitizer active for ``ctx`` (or globally, when ``ctx=None``)?"""
    if ctx is not None and getattr(ctx, "sanitize", False):
        return True
    return env_sanitizer_enabled()


# ----------------------------------------------------------------------
# The independent timeline replay
# ----------------------------------------------------------------------
def _replay_segments(schedule, predictor, governor) -> Iterator[_Segment]:
    """Walk the schedule's timeline from scratch.

    Same mean-field semantics as the scheduler-side replay (rates are
    re-evaluated whenever a co-runner finishes; the solo tail runs alone at
    the end) but implemented independently, so a bug in
    ``core/schedule.py`` cannot vouch for itself.
    """
    cpu = list(schedule.cpu_queue)
    gpu = list(schedule.gpu_queue)
    on_cpu: tuple[object, float] | None = None
    on_gpu: tuple[object, float] | None = None
    t = 0.0

    while True:
        if on_cpu is None and cpu:
            on_cpu = (cpu.pop(0), 1.0)
        if on_gpu is None and gpu:
            on_gpu = (gpu.pop(0), 1.0)
        if on_cpu is None and on_gpu is None:
            break

        cpu_job = on_cpu[0] if on_cpu else None
        gpu_job = on_gpu[0] if on_gpu else None
        setting = governor(cpu_job, gpu_job)
        t_c = t_g = None
        if cpu_job is not None and gpu_job is not None:
            t_c, t_g = predictor.corun_times(cpu_job.uid, gpu_job.uid, setting)
        elif cpu_job is not None:
            t_c = predictor.solo_time(cpu_job.uid, DeviceKind.CPU, setting.cpu_ghz)
        else:
            t_g = predictor.solo_time(gpu_job.uid, DeviceKind.GPU, setting.gpu_ghz)

        candidates = []
        if on_cpu is not None:
            candidates.append(on_cpu[1] * t_c)
        if on_gpu is not None:
            candidates.append(on_gpu[1] * t_g)
        dt = min(candidates)
        yield _Segment(
            t0=t,
            dt=dt,
            cpu_uid=cpu_job.uid if cpu_job is not None else None,
            gpu_uid=gpu_job.uid if gpu_job is not None else None,
            setting=setting,
        )

        if on_cpu is not None:
            rem = on_cpu[1] - dt / t_c
            on_cpu = None if rem <= _EPS else (on_cpu[0], rem)
        if on_gpu is not None:
            rem = on_gpu[1] - dt / t_g
            on_gpu = None if rem <= _EPS else (on_gpu[0], rem)
        t += dt

    for job, kind in schedule.solo_tail:
        setting = governor(
            job if kind is DeviceKind.CPU else None,
            job if kind is DeviceKind.GPU else None,
        )
        f = setting.cpu_ghz if kind is DeviceKind.CPU else setting.gpu_ghz
        dt = predictor.solo_time(job.uid, kind, f)
        yield _Segment(
            t0=t,
            dt=dt,
            cpu_uid=job.uid if kind is DeviceKind.CPU else None,
            gpu_uid=job.uid if kind is DeviceKind.GPU else None,
            setting=setting,
        )
        t += dt


def _segment_power_w(predictor, seg: _Segment) -> float:
    """Predicted chip power over a segment, asked of the predictor directly."""
    if seg.cpu_uid is not None and seg.gpu_uid is not None:
        return predictor.pair_power_w(seg.cpu_uid, seg.gpu_uid, seg.setting)
    if seg.cpu_uid is not None:
        return predictor.solo_power_w(
            seg.cpu_uid, DeviceKind.CPU, seg.setting.cpu_ghz
        )
    return predictor.solo_power_w(
        seg.gpu_uid, DeviceKind.GPU, seg.setting.gpu_ghz
    )


def _level_in_domain(f_ghz: float, levels: tuple[float, ...]) -> bool:
    return any(math.isclose(f_ghz, level, abs_tol=1e-9) for level in levels)


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def _check_partition(ctx, schedule) -> list[Violation]:
    scheduled = schedule.all_uids()
    expected = [j.uid for j in ctx.jobs]
    out: list[Violation] = []
    duplicates = sorted(u for u, n in Counter(scheduled).items() if n > 1)
    if duplicates:
        out.append(
            Violation(
                INVARIANT_PARTITION,
                "job(s) appear more than once across the queues: "
                + ", ".join(duplicates),
                MappingProxyType({"duplicates": tuple(duplicates)}),
            )
        )
    missing = sorted(set(expected) - set(scheduled))
    if missing:
        out.append(
            Violation(
                INVARIANT_PARTITION,
                "job(s) from the problem are missing from the schedule: "
                + ", ".join(missing),
                MappingProxyType({"missing": tuple(missing)}),
            )
        )
    extra = sorted(set(scheduled) - set(expected))
    if extra:
        out.append(
            Violation(
                INVARIANT_PARTITION,
                "schedule contains job(s) not in the problem: "
                + ", ".join(extra),
                MappingProxyType({"extra": tuple(extra)}),
            )
        )
    return out


def _check_timeline(
    ctx, schedule, rel_tol: float
) -> tuple[list[Violation], float | None]:
    """Frequency-domain and power-cap checks; returns the replayed makespan.

    Returns ``None`` for the makespan when the replay itself could not
    finish (e.g. the governor found no feasible setting mid-replay — which
    is itself reported as a power-cap violation).
    """
    from repro.core.feasibility import context_cap

    cap_w = context_cap(ctx)
    processor = getattr(ctx.predictor, "processor", None)
    cpu_levels = processor.cpu.domain.levels if processor is not None else None
    gpu_levels = processor.gpu.domain.levels if processor is not None else None
    out: list[Violation] = []
    seen_settings: set[tuple] = set()
    makespan = 0.0
    try:
        for seg in _replay_segments(schedule, ctx.predictor, ctx.governor):
            makespan = seg.t0 + seg.dt
            pair = (seg.cpu_uid, seg.gpu_uid)
            key = (pair, seg.setting)
            if key in seen_settings:
                continue
            seen_settings.add(key)
            if cpu_levels is not None and not _level_in_domain(
                seg.setting.cpu_ghz, cpu_levels
            ):
                out.append(
                    Violation(
                        INVARIANT_FREQUENCY,
                        f"CPU frequency {seg.setting.cpu_ghz} GHz for "
                        f"{pair} is not a level of the CPU DVFS domain",
                        MappingProxyType(
                            {"pair": pair, "f_ghz": seg.setting.cpu_ghz}
                        ),
                    )
                )
            if gpu_levels is not None and not _level_in_domain(
                seg.setting.gpu_ghz, gpu_levels
            ):
                out.append(
                    Violation(
                        INVARIANT_FREQUENCY,
                        f"GPU frequency {seg.setting.gpu_ghz} GHz for "
                        f"{pair} is not a level of the GPU DVFS domain",
                        MappingProxyType(
                            {"pair": pair, "f_ghz": seg.setting.gpu_ghz}
                        ),
                    )
                )
            power = _segment_power_w(ctx.predictor, seg)
            if power > cap_w * (1.0 + rel_tol):
                out.append(
                    Violation(
                        INVARIANT_POWER_CAP,
                        f"predicted chip power {power:.3f} W for {pair} at "
                        f"{seg.setting} exceeds the {cap_w:g} W cap "
                        f"(co-run interval starting at t={seg.t0:.3f}s)",
                        MappingProxyType(
                            {
                                "pair": pair,
                                "setting": seg.setting,
                                "power_w": power,
                                "cap_w": cap_w,
                                "t0_s": seg.t0,
                            }
                        ),
                    )
                )
    except InfeasibleCapError as exc:
        out.append(
            Violation(
                INVARIANT_POWER_CAP,
                "governor found no cap-feasible frequency setting while "
                f"replaying the schedule: {exc}",
                MappingProxyType({"cap_w": cap_w, "jobs": exc.jobs}),
            )
        )
        return out, None
    return out, makespan


def _check_makespan(ctx, schedule, replayed: float, rel_tol: float) -> list[Violation]:
    reported = ctx.predicted_makespan(schedule)
    if not math.isclose(replayed, reported, rel_tol=rel_tol, abs_tol=1e-9):
        return [
            Violation(
                INVARIANT_MAKESPAN,
                f"predicted makespan {reported:.6f}s disagrees with the "
                f"independent timeline replay ({replayed:.6f}s)",
                MappingProxyType(
                    {"reported_s": reported, "replayed_s": replayed}
                ),
            )
        ]
    return []


def _check_lower_bound(ctx, replayed: float, rel_tol: float) -> list[Violation]:
    from repro.core.bounds import lower_bound
    from repro.core.feasibility import context_cap

    cap_w = context_cap(ctx)
    try:
        # Pieces passed explicitly so duck-typed contexts work too.
        t_low, _ = lower_bound(ctx.predictor, ctx.jobs, cap_w)
    except (InfeasibleCapError, ValueError) as exc:
        return [
            Violation(
                INVARIANT_LOWER_BOUND,
                f"T_low could not be derived under the {cap_w:g} W cap: "
                f"{exc}",
                MappingProxyType({"cap_w": cap_w}),
            )
        ]
    if replayed < t_low * (1.0 - rel_tol) - 1e-9:
        return [
            Violation(
                INVARIANT_LOWER_BOUND,
                f"replayed makespan {replayed:.6f}s is below the T_low "
                f"lower bound {t_low:.6f}s — the degradation model and the "
                "schedule disagree",
                MappingProxyType({"t_low_s": t_low, "replayed_s": replayed}),
            )
        ]
    return []


def verify_schedule(ctx, schedule, *, rel_tol: float = DEFAULT_REL_TOL) -> list[Violation]:
    """Check every Definition 2.1 invariant of ``schedule`` under ``ctx``.

    ``ctx`` is a :class:`~repro.core.context.SchedulingContext` (or any
    object exposing ``jobs``, ``cap_w``, ``predictor``, ``governor``, and
    ``predicted_makespan``).  Returns the (possibly empty) list of
    violations; never raises for an invalid schedule — use
    :func:`check_schedule` for the raising variant.
    """
    violations = _check_partition(ctx, schedule)
    timeline_violations, replayed = _check_timeline(ctx, schedule, rel_tol)
    violations.extend(timeline_violations)
    if replayed is not None:
        violations.extend(_check_makespan(ctx, schedule, replayed, rel_tol))
        # T_low is a bound over the *full* job set; a partial schedule
        # (already reported above) would trip it spuriously.
        if not any(v.invariant == INVARIANT_PARTITION for v in violations):
            violations.extend(_check_lower_bound(ctx, replayed, rel_tol))
    return violations


def check_schedule(ctx, schedule, *, where: str = "schedule", rel_tol: float = DEFAULT_REL_TOL) -> None:
    """Verify ``schedule`` and raise on any violation (the sanitizer's hook)."""
    violations = verify_schedule(ctx, schedule, rel_tol=rel_tol)
    if violations:
        summary = "; ".join(str(v) for v in violations)
        raise ScheduleInvariantError(
            f"invalid co-schedule from {where}: {summary}",
            violations=tuple(violations),
            where=where,
        )


def maybe_check_schedule(ctx, schedule, *, where: str = "schedule") -> None:
    """Run :func:`check_schedule` only when the sanitizer is armed."""
    if sanitizer_enabled(ctx):
        check_schedule(ctx, schedule, where=where)


# ----------------------------------------------------------------------
# Execution-record invariants (the engine.run() sanitizer hook)
# ----------------------------------------------------------------------
#: Absolute slack for timeline ordering comparisons; matches the engine's
#: deadline-accounting epsilon so the verifier never flags float noise the
#: simulator itself tolerates.
_T_EPS = 1e-9


def _check_exec_timeline(result, rel_tol: float) -> list[Violation]:
    """Per-device occupancy: sorted, non-overlapping, within the run."""
    out: list[Violation] = []
    horizon = result.makespan_s * (1.0 + rel_tol) + _T_EPS
    by_device: dict[str, list] = {}
    for iv in result.timeline:
        if iv.t1_s < iv.t0_s - _T_EPS:
            out.append(
                Violation(
                    INVARIANT_EXEC_TIMELINE,
                    f"interval of {iv.job!r} on {iv.device} ends before it "
                    f"starts ({iv.t0_s:.6f}s .. {iv.t1_s:.6f}s)",
                    MappingProxyType({"job": iv.job, "device": iv.device}),
                )
            )
        if iv.t0_s < -_T_EPS or iv.t1_s > horizon:
            out.append(
                Violation(
                    INVARIANT_EXEC_TIMELINE,
                    f"interval of {iv.job!r} on {iv.device} "
                    f"({iv.t0_s:.6f}s .. {iv.t1_s:.6f}s) falls outside the "
                    f"execution window [0, {result.makespan_s:.6f}s]",
                    MappingProxyType(
                        {"job": iv.job, "device": iv.device,
                         "makespan_s": result.makespan_s}
                    ),
                )
            )
        by_device.setdefault(iv.device, []).append(iv)
    for device, intervals in by_device.items():
        intervals.sort(key=lambda iv: (iv.t0_s, iv.t1_s))
        for prev, cur in zip(intervals, intervals[1:]):
            if cur.t0_s < prev.t1_s - _T_EPS:
                out.append(
                    Violation(
                        INVARIANT_EXEC_TIMELINE,
                        f"{device} serves {prev.job!r} and {cur.job!r} at "
                        f"once (overlap {prev.t1_s - cur.t0_s:.6f}s at "
                        f"t={cur.t0_s:.6f}s)",
                        MappingProxyType(
                            {"device": device, "jobs": (prev.job, cur.job)}
                        ),
                    )
                )
    return out


def _check_exec_completions(result, rel_tol: float) -> list[Violation]:
    """Each completed job's records must tell one consistent story.

    The occupancy chain must span exactly launch..finish, contain one
    interval per launch-or-resume, change devices only where a migrated
    preemption record says so, and never put the job on two devices at
    once; arrivals must precede starts and the makespan must cover the
    last finish.
    """
    out: list[Violation] = []
    resumed: dict[str, list] = {}
    for p in result.preemptions:
        if p.resumed_s is not None:
            resumed.setdefault(p.job, []).append(p)
        if p.resumed_device is not None:
            migrated = p.resumed_device != p.from_device
            if migrated != p.migrated:
                out.append(
                    Violation(
                        INVARIANT_EXEC_COMPLETION,
                        f"preemption of {p.job!r} resumed on "
                        f"{p.resumed_device} from {p.from_device} but is "
                        f"marked migrated={p.migrated}",
                        MappingProxyType({"job": p.job}),
                    )
                )
    for c in result.completions:
        if c.finish_s > result.makespan_s * (1.0 + rel_tol) + _T_EPS:
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} finishes at {c.finish_s:.6f}s, after the "
                    f"reported makespan {result.makespan_s:.6f}s",
                    MappingProxyType(
                        {"job": c.job, "finish_s": c.finish_s,
                         "makespan_s": result.makespan_s}
                    ),
                )
            )
        arrival = result.arrivals.get(c.job)
        if arrival is not None and c.start_s < arrival - _T_EPS:
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} starts at {c.start_s:.6f}s, before its "
                    f"arrival at {arrival:.6f}s",
                    MappingProxyType(
                        {"job": c.job, "start_s": c.start_s,
                         "arrival_s": arrival}
                    ),
                )
            )
        chain = sorted(result.intervals_of(c.job), key=lambda iv: iv.t0_s)
        if not chain:
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} completed but has no occupancy intervals",
                    MappingProxyType({"job": c.job}),
                )
            )
            continue
        expected_n = 1 + len(resumed.get(c.job, ()))
        if len(chain) != expected_n:
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} has {len(chain)} occupancy interval(s) but "
                    f"{expected_n} launch-or-resume record(s)",
                    MappingProxyType(
                        {"job": c.job, "intervals": len(chain),
                         "expected": expected_n}
                    ),
                )
            )
        if not math.isclose(
            chain[0].t0_s, c.start_s, rel_tol=rel_tol, abs_tol=_T_EPS
        ):
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} launch record says {c.start_s:.6f}s but its "
                    f"first interval opens at {chain[0].t0_s:.6f}s",
                    MappingProxyType({"job": c.job}),
                )
            )
        if not math.isclose(
            chain[-1].t1_s, c.finish_s, rel_tol=rel_tol, abs_tol=_T_EPS
        ):
            out.append(
                Violation(
                    INVARIANT_EXEC_COMPLETION,
                    f"{c.job!r} completion record says {c.finish_s:.6f}s "
                    f"but its last interval closes at {chain[-1].t1_s:.6f}s",
                    MappingProxyType({"job": c.job}),
                )
            )
        for prev, cur in zip(chain, chain[1:]):
            if cur.t0_s < prev.t1_s - _T_EPS:
                out.append(
                    Violation(
                        INVARIANT_EXEC_COMPLETION,
                        f"{c.job!r} occupies {prev.device} and {cur.device} "
                        f"at once around t={cur.t0_s:.6f}s",
                        MappingProxyType({"job": c.job}),
                    )
                )
        start = result.starts.get(c.job)
        if start is not None and len(chain) == expected_n:
            devices = [str(start.kind)] + [
                p.resumed_device
                for p in sorted(resumed.get(c.job, ()), key=lambda p: p.resumed_s)
            ]
            observed = [iv.device for iv in chain]
            if observed != devices:
                out.append(
                    Violation(
                        INVARIANT_EXEC_COMPLETION,
                        f"{c.job!r} device chain {observed} disagrees with "
                        f"its launch/resume records {devices} — a device "
                        "change without a migration record",
                        MappingProxyType(
                            {"job": c.job, "observed": tuple(observed),
                             "expected": tuple(devices)}
                        ),
                    )
                )
    return out


def _check_exec_busy(result, rel_tol: float) -> list[Violation]:
    """Busy-time counters must equal the summed occupancy timeline."""
    out: list[Violation] = []
    sums = {"cpu": 0.0, "gpu": 0.0}
    for iv in result.timeline:
        sums[iv.device] = sums.get(iv.device, 0.0) + iv.duration_s
    for device, reported in (
        ("cpu", result.cpu_busy_s),
        ("gpu", result.gpu_busy_s),
    ):
        summed = sums.get(device, 0.0)
        if not math.isclose(summed, reported, rel_tol=rel_tol, abs_tol=1e-9):
            out.append(
                Violation(
                    INVARIANT_EXEC_BUSY,
                    f"{device} busy time {reported:.6f}s disagrees with the "
                    f"summed occupancy timeline ({summed:.6f}s)",
                    MappingProxyType(
                        {"device": device, "reported_s": reported,
                         "summed_s": summed}
                    ),
                )
            )
    return out


def _check_exec_deadlines(result, rel_tol: float) -> list[Violation]:
    """Deadline-miss accounting must match an independent recount."""
    out: list[Violation] = []
    finish = {c.job: c.finish_s for c in result.completions}
    expected: dict[str, float] = {}
    for uid, dl in result.deadlines.items():
        end = finish.get(uid)
        if end is None:
            if result.makespan_s > dl + _T_EPS:
                expected[uid] = result.makespan_s - dl
        elif end > dl + _T_EPS:
            expected[uid] = end - dl
    reported = {v.job: v.lateness_s for v in result.violations}
    for uid in sorted(set(expected) | set(reported)):
        if uid not in reported:
            out.append(
                Violation(
                    INVARIANT_EXEC_DEADLINE,
                    f"{uid!r} missed its deadline by {expected[uid]:.6f}s "
                    "but the execution reports no violation",
                    MappingProxyType(
                        {"job": uid, "lateness_s": expected[uid]}
                    ),
                )
            )
        elif uid not in expected:
            out.append(
                Violation(
                    INVARIANT_EXEC_DEADLINE,
                    f"{uid!r} is reported late by {reported[uid]:.6f}s but "
                    "met its deadline on recount",
                    MappingProxyType(
                        {"job": uid, "lateness_s": reported[uid]}
                    ),
                )
            )
        elif not math.isclose(
            expected[uid], reported[uid], rel_tol=rel_tol, abs_tol=1e-6
        ):
            out.append(
                Violation(
                    INVARIANT_EXEC_DEADLINE,
                    f"{uid!r} lateness {reported[uid]:.6f}s disagrees with "
                    f"the recount ({expected[uid]:.6f}s)",
                    MappingProxyType(
                        {"job": uid, "reported_s": reported[uid],
                         "recount_s": expected[uid]}
                    ),
                )
            )
    return out


def verify_execution(result, *, rel_tol: float = DEFAULT_REL_TOL) -> list[Violation]:
    """Check the structural invariants of an execution record.

    ``result`` is an :class:`~repro.engine.sim.ExecutionResult` (duck-typed
    — anything exposing its fields works).  Unlike :func:`verify_schedule`,
    which replays a *plan*, this referees what the event-driven engine says
    *happened*, so it stays meaningful on preempted and migrated timelines
    the mean-field replay cannot express.  Time-shared executions carry no
    occupancy timeline (several jobs share the CPU at once); their
    interval-dependent checks are skipped.  Returns the (possibly empty)
    violation list; use :func:`check_execution` for the raising variant.
    """
    violations = list(_check_exec_deadlines(result, rel_tol))
    if result.timeline:
        violations.extend(_check_exec_timeline(result, rel_tol))
        violations.extend(_check_exec_completions(result, rel_tol))
        violations.extend(_check_exec_busy(result, rel_tol))
    return violations


def check_execution(
    result, *, where: str = "engine.run", rel_tol: float = DEFAULT_REL_TOL
) -> None:
    """Verify an execution record and raise on any violation."""
    violations = verify_execution(result, rel_tol=rel_tol)
    if violations:
        summary = "; ".join(str(v) for v in violations)
        raise ScheduleInvariantError(
            f"invalid execution from {where}: {summary}",
            violations=tuple(violations),
            where=where,
        )


def maybe_check_execution(result, *, where: str = "engine.run", ctx=None) -> None:
    """Run :func:`check_execution` only when the sanitizer is armed."""
    if sanitizer_enabled(ctx):
        check_execution(result, where=where)


# ----------------------------------------------------------------------
# Fleet-level invariants (the fleet_schedule sanitizer hook)
# ----------------------------------------------------------------------
def _check_fleet_partition(ctx, result) -> list[Violation]:
    """The per-node assignments must partition the context's job set."""
    out: list[Violation] = []
    expected = [j.uid for j in ctx.jobs]
    assigned: list[str] = []
    for a in result.assignments:
        assigned.extend(j.uid for j in a.jobs)
    duplicates = sorted(u for u, n in Counter(assigned).items() if n > 1)
    if duplicates:
        out.append(
            Violation(
                INVARIANT_FLEET_PARTITION,
                "job(s) assigned to more than one node: "
                + ", ".join(duplicates),
                MappingProxyType({"duplicates": tuple(duplicates)}),
            )
        )
    missing = sorted(set(expected) - set(assigned))
    if missing:
        out.append(
            Violation(
                INVARIANT_FLEET_PARTITION,
                "job(s) from the problem were assigned to no node: "
                + ", ".join(missing),
                MappingProxyType({"missing": tuple(missing)}),
            )
        )
    extra = sorted(set(assigned) - set(expected))
    if extra:
        out.append(
            Violation(
                INVARIANT_FLEET_PARTITION,
                "fleet schedule contains job(s) not in the problem: "
                + ", ".join(extra),
                MappingProxyType({"extra": tuple(extra)}),
            )
        )
    known = {n.name for n in ctx.fleet.nodes}
    ghosts = sorted(
        set(a.node for a in result.assignments) - known
    ) + sorted(set(result.idle_nodes) - known)
    for name in ghosts:
        out.append(
            Violation(
                INVARIANT_FLEET_PARTITION,
                f"schedule references node {name!r} which is not in the fleet",
                MappingProxyType({"node": name}),
            )
        )
    return out


def _node_power_steps(sub, schedule) -> list[tuple[float, float, float]]:
    """(t0, t1, power_w) steps of one node's independently replayed plan.

    All nodes share the same wall clock — the node predictor already folds
    ``speed_scale`` into its times and ``power_scale`` into its powers, so
    steps from different nodes line up directly.
    """
    steps = []
    for seg in _replay_segments(schedule, sub.predictor, sub.governor):
        steps.append(
            (seg.t0, seg.t0 + seg.dt, _segment_power_w(sub.predictor, seg))
        )
    return steps


def _check_fleet_budget(
    ctx, profiles: Mapping[str, list], rel_tol: float
) -> list[Violation]:
    """Sweep summed node powers over every timeline boundary vs. the budget."""
    budget = ctx.fleet.budget_w
    if budget is None:
        return []
    boundaries = sorted(
        {t for steps in profiles.values() for t0, t1, _ in steps for t in (t0, t1)}
    )
    out: list[Violation] = []
    for t0, t1 in zip(boundaries, boundaries[1:]):
        mid = 0.5 * (t0 + t1)
        active = {
            node: p
            for node, steps in profiles.items()
            for s0, s1, p in steps
            if s0 <= mid < s1
        }
        total = sum(active.values())
        if total > budget * (1.0 + rel_tol):
            out.append(
                Violation(
                    INVARIANT_FLEET_BUDGET,
                    f"summed fleet power {total:.3f} W over "
                    f"t=[{t0:.3f}s, {t1:.3f}s) exceeds the shared "
                    f"{budget:g} W budget "
                    f"({', '.join(f'{n}={p:.3f}' for n, p in sorted(active.items()))})",
                    MappingProxyType(
                        {
                            "budget_w": budget,
                            "power_w": total,
                            "t0_s": t0,
                            "t1_s": t1,
                            "per_node_w": MappingProxyType(dict(active)),
                        }
                    ),
                )
            )
    return out


def verify_fleet_schedule(ctx, result, *, rel_tol: float = DEFAULT_REL_TOL) -> list[Violation]:
    """Check the fleet-level invariants of a :class:`FleetScheduleResult`.

    Three layers: the assignments must partition ``ctx.jobs`` across real
    fleet nodes (:data:`INVARIANT_FLEET_PARTITION`); each node's plan must
    satisfy every Definition 2.1 invariant on that node's derived
    single-node sub-context, with power-cap breaches re-tagged
    :data:`INVARIANT_NODE_CAP` and messages naming the node; and when the
    fleet declares a shared ``budget_w``, the *summed* per-node predicted
    power must stay under it over every interval of the union timeline
    (:data:`INVARIANT_FLEET_BUDGET`).  Returns the (possibly empty)
    violation list; use :func:`check_fleet_schedule` to raise instead.
    """
    violations = _check_fleet_partition(ctx, result)
    profiles: dict[str, list] = {}
    for a in result.assignments:
        try:
            index = ctx.fleet.index(a.node)
        except KeyError:
            continue  # already reported as a partition violation
        sub = ctx.node_context(index, jobs=a.jobs)
        for v in verify_schedule(sub, a.schedule, rel_tol=rel_tol):
            if v.invariant == INVARIANT_POWER_CAP:
                v = Violation(
                    INVARIANT_NODE_CAP,
                    f"[{a.node}] {v.message}",
                    MappingProxyType(dict(v.details, node=a.node)),
                )
            else:
                v = Violation(
                    v.invariant,
                    f"[{a.node}] {v.message}",
                    MappingProxyType(dict(v.details, node=a.node)),
                )
            violations.append(v)
        if ctx.fleet.budget_w is not None:
            try:
                profiles[a.node] = _node_power_steps(sub, a.schedule)
            except InfeasibleCapError:
                pass  # the per-node verifier reported the replay failure
    violations.extend(_check_fleet_budget(ctx, profiles, rel_tol))
    return violations


def check_fleet_schedule(
    ctx, result, *, where: str = "fleet", rel_tol: float = DEFAULT_REL_TOL
) -> None:
    """Verify a fleet schedule and raise on any violation."""
    violations = verify_fleet_schedule(ctx, result, rel_tol=rel_tol)
    if violations:
        summary = "; ".join(str(v) for v in violations)
        raise ScheduleInvariantError(
            f"invalid fleet schedule from {where}: {summary}",
            violations=tuple(violations),
            where=where,
        )


def maybe_check_fleet_schedule(ctx, result, *, where: str = "fleet") -> None:
    """Run :func:`check_fleet_schedule` only when the sanitizer is armed."""
    if sanitizer_enabled(ctx):
        check_fleet_schedule(ctx, result, where=where)
