"""Static and dynamic correctness analysis for the reproduction.

Two halves, both independent of the code they check:

* :mod:`repro.analysis.invariants` — a paper-invariant **schedule
  verifier**: :func:`verify_schedule` re-derives every Definition 2.1
  requirement (job partition, frequency domains, power cap, makespan
  consistency, the ``T_low`` lower bound) on any
  :class:`~repro.core.schedule.CoSchedule`, plus the engine-side
  :func:`verify_execution` refereeing event-driven
  :class:`~repro.engine.sim.ExecutionResult` records (occupancy timeline,
  preemption/migration chains, busy and deadline accounting); the
  ``REPRO_SANITIZE=1`` / ``ctx.with_sanitizer()`` sanitizer mode re-runs
  them after every registry scheduler, refinement pass, ``engine.run()``
  execution, and service batch.
* :mod:`repro.analysis.storecheck` — a **store-log verifier**:
  :func:`verify_store_log` refolds a durable shard's event log from
  scratch and checks that snapshot-plus-suffix recovery reproduces it
  exactly, with no double completions, contested idempotency keys, or
  orphan events — the referee the durability e2e suite calls after
  ``kill -9``.
* :mod:`repro.analysis.lint` — a repo-specific **AST lint pack**
  (``python -m repro.analysis.lint src tests tools benchmarks examples``;
  rules REP001-REP011) enforcing the architectural conventions that keep
  the above true: contexts instead of raw plumbing, seeded RNGs,
  tolerance-based float comparisons, cache-respecting evaluation, locked
  service state, a wall-clock-free engine, no removed-shim
  reintroduction, event-log-only store mutation, and fleet-aware cap
  access.
* :mod:`repro.analysis.dims` — a **units-aware dataflow checker** (lint
  rules REP010/REP011): propagates watts/joules/seconds (wall and native
  flavors) from the :mod:`repro.units` aliases and the repo's naming
  conventions through assignments, arithmetic, comparisons, and call
  sites, flagging cross-dimension mixing and ``speed_scale`` /
  ``power_scale`` misuse statically.
"""

from repro.analysis.invariants import (
    ALL_INVARIANTS,
    EXECUTION_INVARIANTS,
    INVARIANT_EXEC_BUSY,
    INVARIANT_EXEC_COMPLETION,
    INVARIANT_EXEC_DEADLINE,
    INVARIANT_EXEC_TIMELINE,
    INVARIANT_FREQUENCY,
    INVARIANT_LOWER_BOUND,
    INVARIANT_MAKESPAN,
    INVARIANT_PARTITION,
    INVARIANT_POWER_CAP,
    SANITIZE_ENV,
    Violation,
    check_execution,
    check_schedule,
    env_sanitizer_enabled,
    maybe_check_execution,
    maybe_check_schedule,
    sanitizer_enabled,
    verify_execution,
    verify_schedule,
)
from repro.analysis.storecheck import (
    STORE_INVARIANTS,
    check_store_log,
    verify_store,
    verify_store_dir,
    verify_store_log,
)
from repro.errors import ScheduleInvariantError

__all__ = [
    "ALL_INVARIANTS",
    "EXECUTION_INVARIANTS",
    "INVARIANT_EXEC_BUSY",
    "INVARIANT_EXEC_COMPLETION",
    "INVARIANT_EXEC_DEADLINE",
    "INVARIANT_EXEC_TIMELINE",
    "INVARIANT_FREQUENCY",
    "INVARIANT_LOWER_BOUND",
    "INVARIANT_MAKESPAN",
    "INVARIANT_PARTITION",
    "INVARIANT_POWER_CAP",
    "SANITIZE_ENV",
    "STORE_INVARIANTS",
    "ScheduleInvariantError",
    "Violation",
    "check_execution",
    "check_schedule",
    "check_store_log",
    "env_sanitizer_enabled",
    "maybe_check_execution",
    "maybe_check_schedule",
    "sanitizer_enabled",
    "verify_execution",
    "verify_schedule",
    "verify_store",
    "verify_store_dir",
    "verify_store_log",
]
