"""Pass 2: propagate dimensions through a module and flag violations.

The checker is a flow-forward abstract interpreter over one module's
AST: every scope (module body, class body, function body, lambda) gets
an environment mapping local names to dimensions, seeded from parameter
annotations/conventions; expressions are evaluated bottom-up through the
algebra in :mod:`repro.analysis.dims.model`; and a finding is emitted
whenever two *known* dimensions meet illegally:

* ``+``/``-``/comparisons/``min``/``max`` across dimensions
  (watts vs joules, a cap vs an energy estimate) — REP010;
* wall/native seconds mixed, ``speed_scale`` applied in the wrong
  direction or twice — REP011;
* ``power_scale`` applied twice to the same power/energy value — REP010;
* a product/quotient whose dimension contradicts the name it is
  assigned to or the declared return dimension (``total_w = power_w *
  dt_s`` is joules) — REP010/REP011;
* a call-site argument whose dimension contradicts the callee's
  parameter (signatures collected per-module plus the curated builtin
  table) — REP010/REP011.

Unknown dimensions are compatible with everything: the checker only
speaks when both sides are certain, which is what keeps it usable as a
repo-wide lint gate rather than an advisory tool.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.dims.collect import (
    BUILTIN_SIGS,
    SignatureIndex,
    dim_of_annotation,
    dim_of_name,
    signature_of,
)
from repro.analysis.dims.model import (
    Dim,
    DimResult,
    compat,
    div_result,
    mul_result,
)


def _add_verb(op: ast.operator) -> str:
    return "added to" if isinstance(op, ast.Add) else "subtracted from"


@dataclass(frozen=True)
class DimFinding:
    """One dimensional violation: an AST node, a rule code, a message."""

    node: ast.AST
    code: str
    message: str


@dataclass(frozen=True)
class TupleVal:
    """Dimension vector of a tuple expression (supports unpacking)."""

    elems: tuple[Dim | None, ...]


Value = Dim | TupleVal | None


def _clip(node: ast.AST, limit: int = 60) -> str:
    """A short source rendering of ``node`` for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return "<expr>"
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


class DimChecker:
    """Checks one module; :meth:`run` yields :class:`DimFinding`s."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.index = SignatureIndex()
        self.index.collect(tree)
        self.findings: list[DimFinding] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> list[DimFinding]:
        self._scan_scope(self.tree.body, env={}, ret=None)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
            elif isinstance(node, ast.ClassDef):
                self._scan_scope(node.body, env={}, ret=None)
        # An expression reachable through two sweeps (e.g. an aggregate's
        # comprehension argument) must not double-report.
        seen: set[tuple[int, str, str]] = set()
        unique: list[DimFinding] = []
        for finding in self.findings:
            key = (id(finding.node), finding.code, finding.message)
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique

    def _check_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        sig = signature_of(fn)
        env: dict[str, Value] = {}
        for pname, pdim in (*sig.params, *sig.kwonly):
            env[pname] = pdim
        self._scan_scope(fn.body, env=env, ret=sig.ret)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _scan_scope(
        self,
        body: list[ast.stmt],
        env: dict[str, Value],
        ret: Dim | None,
    ) -> None:
        for stmt in body:
            self._stmt(stmt, env, ret)

    def _stmt(
        self, stmt: ast.stmt, env: dict[str, Value], ret: Dim | None
    ) -> None:
        # Nested defs/classes own their scopes; run() visits them.
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = dim_of_annotation(stmt.annotation)
            value = (
                self._eval(stmt.value, env) if stmt.value is not None else None
            )
            self._bind(stmt.target, value, env, stmt, declared=declared)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if ret is not None and isinstance(value, Dim):
                    res = compat(value, ret, verb="returned as")
                    self._note(stmt, res, f"return {_clip(stmt.value)}")
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, env)
            self._scan_scope(stmt.body, env, ret)
            self._scan_scope(stmt.orelse, env, ret)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            self._bind(stmt.target, None, env, stmt, quiet=True)
            self._scan_scope(stmt.body, env, ret)
            self._scan_scope(stmt.orelse, env, ret)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, env, stmt, quiet=True)
            self._scan_scope(stmt.body, env, ret)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._scan_scope(stmt.body, env, ret)
            for handler in stmt.handlers:
                self._scan_scope(handler.body, env, ret)
            self._scan_scope(stmt.orelse, env, ret)
            self._scan_scope(stmt.finalbody, env, ret)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _aug_assign(self, stmt: ast.AugAssign, env: dict[str, Value]) -> None:
        target_dim = self._read_target(stmt.target, env)
        value = self._eval(stmt.value, env)
        vdim = value if isinstance(value, Dim) else None
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            res = compat(target_dim, vdim, verb=_add_verb(stmt.op))
            self._note(stmt, res, _clip(stmt))
            result: Dim | None = res.dim
        elif isinstance(stmt.op, ast.Mult):
            res = mul_result(target_dim, vdim)
            self._note(stmt, res, _clip(stmt))
            result = res.dim
        elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
            res = div_result(target_dim, vdim)
            self._note(stmt, res, _clip(stmt))
            result = res.dim
        else:
            result = None
        self._bind(stmt.target, result, env, stmt)

    def _read_target(
        self, target: ast.expr, env: dict[str, Value]
    ) -> Dim | None:
        if isinstance(target, ast.Name):
            known = env.get(target.id)
            if isinstance(known, Dim):
                return known
            return dim_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return dim_of_name(target.attr)
        return None

    def _bind(
        self,
        target: ast.expr,
        value: Value,
        env: dict[str, Value],
        stmt: ast.stmt,
        declared: Dim | None = None,
        quiet: bool = False,
    ) -> None:
        """Assign ``value`` to ``target``: check against the name's
        declared/conventional dimension, then update the environment."""
        if isinstance(target, ast.Name):
            expected = declared or dim_of_name(target.id)
            if (
                not quiet
                and expected is not None
                and isinstance(value, Dim)
            ):
                res = compat(value, expected, verb="assigned to")
                self._note(
                    stmt,
                    res,
                    f"{_clip(stmt)} (name {target.id!r} declares"
                    f" {expected.label})",
                )
            if isinstance(value, (Dim, TupleVal)):
                env[target.id] = value
            else:
                env[target.id] = expected
        elif isinstance(target, ast.Attribute):
            expected = declared or dim_of_name(target.attr)
            if (
                not quiet
                and expected is not None
                and isinstance(value, Dim)
            ):
                res = compat(value, expected, verb="assigned to")
                self._note(
                    stmt,
                    res,
                    f"{_clip(stmt)} (attribute {target.attr!r} declares"
                    f" {expected.label})",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems: tuple[Value, ...]
            if isinstance(value, TupleVal) and len(value.elems) == len(
                target.elts
            ):
                elems = value.elems
            else:
                elems = (None,) * len(target.elts)
            for elt, elt_value in zip(target.elts, elems):
                if isinstance(elt, ast.Starred):
                    self._bind(elt.value, None, env, stmt, quiet=True)
                else:
                    self._bind(elt, elt_value, env, stmt, quiet=quiet)
        # Subscript targets carry no name to check.

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _note(self, node: ast.AST, res: DimResult, context: str) -> None:
        if res.problem is not None:
            code, message = res.problem
            self.findings.append(
                DimFinding(node, code, f"{message}: {context}")
            )

    def _eval(self, expr: ast.expr, env: dict[str, Value]) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is not None:
            return method(expr, env)
        # Default: visit children for findings, no dimension.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return None

    def _eval_Constant(self, expr: ast.Constant, env: dict) -> Value:
        return None

    def _eval_Name(self, expr: ast.Name, env: dict[str, Value]) -> Value:
        known = env.get(expr.id)
        if known is not None:
            return known
        if expr.id in env:  # explicitly unknown
            return None
        return dim_of_name(expr.id)

    def _eval_Attribute(self, expr: ast.Attribute, env: dict) -> Value:
        self._eval(expr.value, env)
        return dim_of_name(expr.attr)

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: dict) -> Value:
        operand = self._eval(expr.operand, env)
        if isinstance(expr.op, (ast.UAdd, ast.USub)):
            return operand
        return None

    def _eval_BinOp(self, expr: ast.BinOp, env: dict) -> Value:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        ldim = left if isinstance(left, Dim) else None
        rdim = right if isinstance(right, Dim) else None
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            res = compat(ldim, rdim, verb=_add_verb(expr.op))
            self._note(expr, res, _clip(expr))
            return res.dim
        if isinstance(expr.op, ast.Mult):
            res = mul_result(ldim, rdim)
            self._note(expr, res, _clip(expr))
            return res.dim
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            res = div_result(ldim, rdim)
            self._note(expr, res, _clip(expr))
            return res.dim
        if isinstance(expr.op, ast.Mod):
            # t % bucket keeps t's dimension; "fmt" % args is a string.
            return ldim
        return None

    def _eval_BoolOp(self, expr: ast.BoolOp, env: dict) -> Value:
        for value in expr.values:
            self._eval(value, env)
        return None

    def _eval_Compare(self, expr: ast.Compare, env: dict) -> Value:
        operands = [self._eval(expr.left, env)]
        operands += [self._eval(c, env) for c in expr.comparators]
        for i, op in enumerate(expr.ops):
            if not isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                continue
            a, b = operands[i], operands[i + 1]
            if isinstance(a, Dim) and isinstance(b, Dim):
                res = compat(a, b, verb="compared against")
                self._note(expr, res, _clip(expr))
        return None

    def _eval_IfExp(self, expr: ast.IfExp, env: dict) -> Value:
        self._eval(expr.test, env)
        body = self._eval(expr.body, env)
        orelse = self._eval(expr.orelse, env)
        if isinstance(body, Dim) and isinstance(orelse, Dim):
            res = compat(body, orelse, verb="merged (across conditional arms) with")
            self._note(expr, res, _clip(expr))
            return res.dim
        return body if isinstance(body, Dim) else (
            orelse if isinstance(orelse, Dim) else None
        )

    def _eval_Tuple(self, expr: ast.Tuple, env: dict) -> Value:
        elems = []
        for elt in expr.elts:
            value = self._eval(elt, env)
            elems.append(value if isinstance(value, Dim) else None)
        return TupleVal(tuple(elems))

    def _eval_List(self, expr: ast.List, env: dict) -> Value:
        for elt in expr.elts:
            self._eval(elt, env)
        return None

    def _eval_Subscript(self, expr: ast.Subscript, env: dict) -> Value:
        value = self._eval(expr.value, env)
        self._eval(expr.slice, env)
        if isinstance(value, TupleVal):
            if isinstance(expr.slice, ast.Constant) and isinstance(
                expr.slice.value, int
            ):
                idx = expr.slice.value
                if -len(value.elems) <= idx < len(value.elems):
                    return value.elems[idx]
        return None

    def _eval_Starred(self, expr: ast.Starred, env: dict) -> Value:
        self._eval(expr.value, env)
        return None

    def _eval_Lambda(self, expr: ast.Lambda, env: dict) -> Value:
        inner = dict(env)
        a = expr.args
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            inner[p.arg] = dim_of_name(p.arg)
        self._eval(expr.body, inner)
        return None

    def _eval_JoinedStr(self, expr: ast.JoinedStr, env: dict) -> Value:
        for value in expr.values:
            if isinstance(value, ast.FormattedValue):
                self._eval(value.value, env)
        return None

    def _eval_NamedExpr(self, expr: ast.NamedExpr, env: dict) -> Value:
        value = self._eval(expr.value, env)
        self._bind(expr.target, value, env, _StmtShim(expr))
        return value if isinstance(value, Dim) else None

    def _comp_elt_value(
        self, expr: ast.GeneratorExp | ast.ListComp | ast.SetComp, env: dict
    ) -> Value:
        inner = dict(env)
        for comp in expr.generators:
            self._eval(comp.iter, inner)
            self._bind(comp.target, None, inner, _StmtShim(expr), quiet=True)
            for cond in comp.ifs:
                self._eval(cond, inner)
        return self._eval(expr.elt, inner)

    def _eval_GeneratorExp(self, expr: ast.GeneratorExp, env: dict) -> Value:
        # Aggregates (sum/min/max) reach the element dimension through
        # _iterable_elt_dim; the generator itself is not a scalar.
        self._comp_elt_value(expr, env)
        return None

    def _eval_ListComp(self, expr: ast.ListComp, env: dict) -> Value:
        # The *list* has no scalar dimension; sum()/min()/max() reach the
        # element dimension through _comp_elt_value directly.
        self._comp_elt_value(expr, env)
        return None

    def _eval_SetComp(self, expr: ast.SetComp, env: dict) -> Value:
        self._comp_elt_value(expr, env)
        return None

    def _eval_DictComp(self, expr: ast.DictComp, env: dict) -> Value:
        inner = dict(env)
        for comp in expr.generators:
            self._eval(comp.iter, inner)
            self._bind(comp.target, None, inner, _StmtShim(expr), quiet=True)
            for cond in comp.ifs:
                self._eval(cond, inner)
        self._eval(expr.key, inner)
        self._eval(expr.value, inner)
        return None

    # -- calls ---------------------------------------------------------
    def _eval_Call(self, expr: ast.Call, env: dict) -> Value:
        func = expr.func
        arg_values = [self._eval(a, env) for a in expr.args]
        kw_values = {
            kw.arg: self._eval(kw.value, env)
            for kw in expr.keywords
            if kw.arg is not None
        }
        for kw in expr.keywords:
            if kw.arg is None:  # **kwargs
                self._eval(kw.value, env)

        if isinstance(func, ast.Attribute):
            self._eval(func.value, env)
        name = self._call_name(func)
        if name is None:
            self._eval(func, env)
            return None

        builtin = self._builtin_call(name, expr, arg_values, env)
        if builtin is not NotImplemented:
            return builtin

        sig = self._resolve_for(func, name)
        if sig is not None:
            self._check_call_args(expr, func, sig, arg_values, kw_values)
            if sig.ret_elems is not None:
                return TupleVal(sig.ret_elems)
            return sig.ret
        # Unknown callable: fall back to the name convention for the
        # return dimension (pair_energy_j(...) is joules).
        return dim_of_name(name)

    def _resolve_for(self, func: ast.expr, name: str):
        """The signature this call site should be checked against.

        Bare-name calls and ``self.``/``cls.`` attribute calls trust the
        module-local index.  Any other receiver (``session.submit(...)``,
        ``core.add_arrival(...)``) may be a *different* object whose
        same-named method takes other dimensions — facades deliberately
        mirror an inner surface with converted units — so only the
        curated cross-module table applies there.
        """
        if isinstance(func, ast.Attribute):
            recv = func.value
            if not (isinstance(recv, ast.Name) and recv.id in ("self", "cls")):
                return BUILTIN_SIGS.get(name)
        return self.index.resolve(name)

    @staticmethod
    def _call_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _builtin_call(
        self,
        name: str,
        expr: ast.Call,
        arg_values: list[Value],
        env: dict,
    ) -> Value:
        """Python builtins the checker understands; ``NotImplemented``
        when ``name`` is not one of them."""
        if name in ("min", "max"):
            dims = [v for v in arg_values if isinstance(v, Dim)]
            if len(expr.args) >= 2:
                merged: Dim | None = None
                for d in dims:
                    res = compat(merged, d, verb=f"{name}()'d against")
                    self._note(expr, res, _clip(expr))
                    merged = res.dim
                return merged
            if len(expr.args) == 1:
                return self._iterable_elt_dim(expr.args[0], arg_values[0], env)
            return None
        if name == "sum":
            if expr.args:
                return self._iterable_elt_dim(expr.args[0], arg_values[0], env)
            return None
        if name in ("abs", "round", "float"):
            if arg_values and isinstance(arg_values[0], Dim):
                return arg_values[0]
            return None
        if name == "sorted":
            return None
        return NotImplemented

    def _iterable_elt_dim(
        self, arg: ast.expr, value: Value, env: dict
    ) -> Value:
        """Element dimension of an aggregated iterable, where knowable."""
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            # The caller's argument sweep already reported findings in
            # here; re-derive the element dimension silently.
            saved = self.findings
            self.findings = []
            try:
                elt = self._comp_elt_value(arg, env)
            finally:
                self.findings = saved
            return elt if isinstance(elt, Dim) else None
        if isinstance(value, TupleVal):
            merged: Dim | None = None
            for elem in value.elems:
                if elem is None:
                    return None
                res = compat(merged, elem)
                if res.problem is not None:
                    return None
                merged = res.dim
            return merged
        return None

    def _check_call_args(
        self,
        expr: ast.Call,
        func: ast.expr,
        sig,
        arg_values: list[Value],
        kw_values: dict[str, Value],
    ) -> None:
        params = list(sig.params)
        # A plain-name call to a method-shaped signature passes the
        # receiver explicitly; positional matching would be off by one,
        # so only attribute calls check positionally against method sigs.
        if sig.has_self and not isinstance(func, ast.Attribute):
            return
        if any(isinstance(a, ast.Starred) for a in expr.args):
            return
        for i, value in enumerate(arg_values):
            if i >= len(params):
                break
            pname, pdim = params[i]
            self._check_one_arg(expr, pname, pdim, value, i)
        for kw_name, value in kw_values.items():
            pdim = sig.param_dim(kw_name)
            self._check_one_arg(expr, kw_name, pdim, value, None)

    def _check_one_arg(
        self,
        expr: ast.Call,
        pname: str,
        pdim: Dim | None,
        value: Value,
        position: int | None,
    ) -> None:
        if pdim is None or not isinstance(value, Dim):
            return
        res = compat(value, pdim, verb="passed as")
        if res.problem is not None:
            code, message = res.problem
            where = (
                f"argument {position + 1}" if position is not None else "keyword"
            )
            self.findings.append(
                DimFinding(
                    expr,
                    code,
                    f"{message}: {where} {pname!r} of {_clip(expr)}",
                )
            )


class _StmtShim:
    """Adapter so expression-level binds can reuse ``_bind`` (which
    renders its ``stmt`` argument into messages)."""

    def __init__(self, expr: ast.expr) -> None:
        self._expr = expr
        self.lineno = getattr(expr, "lineno", 1)
        self.col_offset = getattr(expr, "col_offset", 0)

    def __getattr__(self, item):  # pragma: no cover - delegation
        return getattr(self._expr, item)


def check_module(tree: ast.Module) -> list[DimFinding]:
    """Run the two dims passes over one parsed module."""
    return DimChecker(tree).run()
