"""Units-aware static dataflow analysis (the dims checker).

``repro.analysis.dims`` proves dimension-consistency of the repo's
watts/joules/seconds arithmetic: a signature-collection pass assigns
dimensions to parameters, returns, and fields from the
:mod:`repro.units` aliases and the repo's naming conventions, then a
checking pass propagates dimensions through assignments, arithmetic,
comparisons, and call sites, flagging

* cross-dimension add/compare (a watts cap against a joules estimate) —
  **REP010**;
* native/wall-seconds mixing and ``speed_scale`` misuse (wrong
  direction, double conversion) — **REP011**;
* ``power_scale`` applied twice, and products that silently change
  dimension (``W x s -> J``) flowing into wrongly-named targets.

It surfaces through the lint pack (``python -m repro.analysis.lint``,
rules REP010/REP011, with path scoping, ``--select``, and ``# repro:
noqa`` suppressions) and standalone as ``python -m
repro.analysis.dims``.  :func:`check_module` is the programmatic core:
parse a module, get back :class:`DimFinding` records.
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from repro.analysis.dims.check import DimChecker, DimFinding, check_module
from repro.analysis.dims.collect import (
    ALIAS_DIMS,
    BUILTIN_SIGS,
    FuncSig,
    SignatureIndex,
    dim_of_annotation,
    dim_of_name,
    signature_of,
)
from repro.analysis.dims.model import (
    Dim,
    DimResult,
    compat,
    div_result,
    mul_result,
)

#: One-slot memo so the REP010 and REP011 rules (which the lint engine
#: runs back-to-back over the same parsed module) analyze each file once.
_MEMO: tuple[int, str, list[DimFinding]] | None = None


def check_module_cached(tree: ast.Module, path: PurePath) -> list[DimFinding]:
    """:func:`check_module`, memoized for consecutive same-module calls."""
    global _MEMO
    key_id, key_path = id(tree), str(path)
    if _MEMO is not None and _MEMO[0] == key_id and _MEMO[1] == key_path:
        return _MEMO[2]
    findings = check_module(tree)
    _MEMO = (key_id, key_path, findings)
    return findings


__all__ = [
    "ALIAS_DIMS",
    "BUILTIN_SIGS",
    "Dim",
    "DimChecker",
    "DimFinding",
    "DimResult",
    "FuncSig",
    "SignatureIndex",
    "check_module",
    "check_module_cached",
    "compat",
    "dim_of_annotation",
    "dim_of_name",
    "div_result",
    "mul_result",
    "signature_of",
]
