"""Pass 1: assign dimensions to names, annotations, and signatures.

Dimensions come from two sources, in priority order:

1. **Explicit alias annotations** — the :mod:`repro.units` aliases
   (``Watts``, ``Joules``, ``WallSeconds``, ...) read off parameter,
   return, and field annotations (including ``X | None`` and
   ``Optional[X]`` shapes and string annotations).
2. **Naming conventions** — the repo-wide suffix vocabulary: ``*_w``
   watts, ``*_j`` joules, ``*_s`` seconds (``wall``/``native`` tokens
   select the flavor), ``*_hz``/``*_ghz`` frequency, ``*_scale`` scale
   factors with ``speed_scale``/``power_scale`` special-cased, and the
   exact names in :data:`EXACT_NAMES`.

:class:`SignatureIndex` collects a module's function signatures so the
checking pass can verify call sites interprocedurally; the curated
:data:`BUILTIN_SIGS` table seeds it with the :mod:`repro.units`
conversion helpers and the calibrated model's hot query surface, so
cross-module calls to those check even when only one file is linted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.dims.model import (
    HZ,
    J,
    NS,
    PSCALE_D,
    S,
    SCALE_D,
    SPEED_D,
    SPJ_D,
    W,
    WATTS,
    WS,
    Dim,
)

#: repro.units alias name -> dimension.
ALIAS_DIMS: dict[str, Dim] = {
    "Watts": W,
    "Joules": J,
    "Seconds": S,
    "WallSeconds": WS,
    "NativeSeconds": NS,
    "Hertz": HZ,
    "Scale": SCALE_D,
    "SpeedScale": SPEED_D,
    "PowerScale": PSCALE_D,
    "SecondsPerJoule": SPJ_D,
}

#: Whole names whose dimension the suffix rules cannot express.
EXACT_NAMES: dict[str, Dim] = {
    "speed_scale": SPEED_D,
    "power_scale": PSCALE_D,
    "MAKESPAN_ENERGY_RHO": SPJ_D,
    "_MAKESPAN_ENERGY_RHO": SPJ_D,
    # PowerSegment's field name (a segment's constant chip draw).
    "watts": W,
}

#: Suffix token (the part after the last ``_``) -> dimension.
_SUFFIX_DIMS: dict[str, Dim] = {
    "w": W,
    "j": J,
    "hz": HZ,
    "ghz": HZ,
    "scale": SCALE_D,
}

#: Name tokens that pick a time flavor for a ``*_s`` name.
_WALL_TOKENS = {"wall"}
_NATIVE_TOKENS = {"native"}


def dim_of_name(name: str) -> Dim | None:
    """The dimension a bare identifier advertises, or ``None``."""
    exact = EXACT_NAMES.get(name)
    if exact is not None:
        return exact
    tokens = name.lower().split("_")
    # Leading-underscore names ('_w') and bare letters ('s', often a
    # FrequencySetting) carry no suffix convention.
    tokens = [t for t in tokens if t]
    if len(tokens) < 2:
        return None
    last = tokens[-1]
    if last == "s":
        if _WALL_TOKENS & set(tokens[:-1]):
            return WS
        if _NATIVE_TOKENS & set(tokens[:-1]):
            return NS
        return S
    return _SUFFIX_DIMS.get(last)


def dim_of_annotation(ann: ast.expr | None) -> Dim | None:
    """The dimension an annotation expression declares, or ``None``."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return ALIAS_DIMS.get(ann.id)
    if isinstance(ann, ast.Attribute):
        return ALIAS_DIMS.get(ann.attr)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ALIAS_DIMS.get(ann.value.strip())
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return dim_of_annotation(ann.left) or dim_of_annotation(ann.right)
    if isinstance(ann, ast.Subscript):
        # Optional[Watts] and friends; tuple[...] element dims are the
        # checker's TupleVal business, not an annotation's.
        head = ann.value
        head_name = head.id if isinstance(head, ast.Name) else getattr(head, "attr", "")
        if head_name == "Optional":
            return dim_of_annotation(ann.slice)
    return None


@dataclass(frozen=True)
class FuncSig:
    """What the checker knows about one callable.

    ``params`` are the positional parameters (``self``/``cls`` already
    stripped when ``has_self``); ``kwonly`` the keyword-only ones.
    """

    name: str
    params: tuple[tuple[str, Dim | None], ...]
    ret: Dim | None
    ret_elems: tuple[Dim | None, ...] | None = None
    has_self: bool = False
    kwonly: tuple[tuple[str, Dim | None], ...] = ()

    def param_dim(self, keyword: str) -> Dim | None:
        for pname, pdim in (*self.params, *self.kwonly):
            if pname == keyword:
                return pdim
        return None


#: Marks a name collected twice with conflicting signatures; call sites
#: resolving to it are not checked.
AMBIGUOUS = FuncSig(name="<ambiguous>", params=(), ret=None)


def _sig(
    name: str,
    params: tuple[tuple[str, Dim | None], ...],
    ret: Dim | None,
    ret_elems: tuple[Dim | None, ...] | None = None,
    has_self: bool = False,
) -> FuncSig:
    return FuncSig(name, params, ret, ret_elems, has_self)


#: Cross-module ground truth: the repro.units conversion helpers (their
#: home module is authoritative) and the calibrated model's hot query
#: surface, keyed by bare callable name.
BUILTIN_SIGS: dict[str, FuncSig] = {
    # -- repro.units ---------------------------------------------------
    "wall_from_native": _sig(
        "wall_from_native", (("native_s", NS), ("speed_scale", SPEED_D)), WS
    ),
    "native_from_wall": _sig(
        "native_from_wall", (("wall_s", WS), ("speed_scale", SPEED_D)), NS
    ),
    "energy_j": _sig("energy_j", (("power_w", W), ("dt_s", S)), J),
    "mean_power_w": _sig("mean_power_w", (("total_j", J), ("dt_s", S)), W),
    "duration_s": _sig("duration_s", (("total_j", J), ("power_w", W)), S),
    "scaled_power_w": _sig(
        "scaled_power_w",
        (("power_w", W), ("power_scale", PSCALE_D)),
        Dim(WATTS, pscaled=True),
    ),
    "unscaled_power_w": _sig(
        "unscaled_power_w", (("scaled_w", W), ("power_scale", PSCALE_D)), W
    ),
    # -- model/predictor query surface ---------------------------------
    "solo_time": _sig(
        "solo_time",
        (("uid", None), ("kind", None), ("f_ghz", HZ)),
        S,
        has_self=True,
    ),
    "corun_times": _sig(
        "corun_times",
        (("cpu_uid", None), ("gpu_uid", None), ("setting", None)),
        None,
        ret_elems=(S, S),
        has_self=True,
    ),
    "best_solo": _sig(
        "best_solo",
        (("uid", None), ("kind", None), ("cap_w", W)),
        None,
        ret_elems=(HZ, S),
        has_self=True,
    ),
    "predicted_power": _sig(
        "predicted_power",
        (
            ("predictor", None),
            ("cpu_uid", None),
            ("gpu_uid", None),
            ("setting", None),
        ),
        W,
    ),
    "fleet_predicted_power": _sig(
        "fleet_predicted_power", (("node_states", None),), W
    ),
    "cap_of": _sig("cap_of", (("name", None),), W, has_self=True),
}


def _tuple_ret_elems(
    ann: ast.expr | None,
) -> tuple[Dim | None, ...] | None:
    """Element dims of a ``tuple[A, B, ...]`` return annotation, when at
    least one element names a dimension alias."""
    if not isinstance(ann, ast.Subscript):
        return None
    head = ann.value
    head_name = head.id if isinstance(head, ast.Name) else getattr(head, "attr", "")
    if head_name not in ("tuple", "Tuple"):
        return None
    if not isinstance(ann.slice, ast.Tuple):
        return None
    elems = tuple(dim_of_annotation(e) for e in ann.slice.elts)
    return elems if any(e is not None for e in elems) else None


def signature_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FuncSig:
    """Build a :class:`FuncSig` from a function definition."""
    a = fn.args
    raw = [*a.posonlyargs, *a.args]
    has_self = bool(raw) and raw[0].arg in ("self", "cls")
    if has_self:
        raw = raw[1:]
    params = tuple(
        (
            p.arg,
            dim_of_annotation(p.annotation) or dim_of_name(p.arg),
        )
        for p in raw
    )
    kwonly = tuple(
        (
            p.arg,
            dim_of_annotation(p.annotation) or dim_of_name(p.arg),
        )
        for p in a.kwonlyargs
    )
    ret = dim_of_annotation(fn.returns) or dim_of_name(fn.name)
    ret_elems = _tuple_ret_elems(fn.returns)
    if fn.returns is not None and dim_of_annotation(fn.returns) is None:
        # An explicit non-dimension return annotation (-> None, -> dict,
        # -> bool) overrides the name convention: `def to_wall_s(...) ->
        # list[...]` is a collection, not a duration.
        if not (
            isinstance(fn.returns, ast.Name)
            and fn.returns.id in ("float", "int")
        ):
            ret = None
    return FuncSig(fn.name, params, ret, ret_elems, has_self, kwonly)


class SignatureIndex:
    """Bare-name -> signature map for one module, over the builtins."""

    def __init__(self) -> None:
        self._local: dict[str, FuncSig] = {}

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = signature_of(node)
                seen = self._local.get(node.name)
                if seen is None:
                    self._local[node.name] = sig
                elif seen is not AMBIGUOUS and (
                    seen.params != sig.params
                    or seen.ret != sig.ret
                    or seen.ret_elems != sig.ret_elems
                ):
                    self._local[node.name] = AMBIGUOUS

    def resolve(self, name: str) -> FuncSig | None:
        """Signature for a call to ``name`` (``None`` when unknown or
        ambiguous — ambiguity means *no* checking, never wrong checking).
        """
        sig = self._local.get(name)
        if sig is AMBIGUOUS:
            return None
        if sig is not None:
            return sig
        return BUILTIN_SIGS.get(name)
