"""Standalone dims-checker CLI: ``python -m repro.analysis.dims [paths]``.

Runs only the dimensional-analysis rules (REP010/REP011) through the
lint engine, so path discovery, ordering, and ``# repro: noqa``
suppressions behave exactly like the full pack.  ``make analyze-dims``
is this over the whole repo.

Exit codes: 0 clean, 1 violations found.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def main(argv: Sequence[str] | None = None) -> int:
    # Imported here so `python -m repro.analysis.dims --help` stays fast.
    from repro.analysis.lint import DEFAULT_PATHS
    from repro.analysis.lint.engine import run_rules
    from repro.analysis.lint.rules import DIMS_RULES

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.dims",
        description=(
            "Run the units-aware dimensional-analysis rules (REP010 "
            "dimension mismatch, REP011 native/wall time mixing) over "
            "source trees. See docs/ANALYSIS.md for the dataflow model "
            "and the repro.units annotation vocabulary."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATH",
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    args = parser.parse_args(argv)
    violations = run_rules(args.paths, DIMS_RULES)
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"\n{len(violations)} dimensional violation(s) across "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
