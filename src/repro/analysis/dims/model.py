"""The dimension lattice and its arithmetic algebra.

A :class:`Dim` is what the dataflow checker knows about one expression's
physical dimension.  Kinds cover the repo's vocabulary — watts, joules,
the three time flavors (generic, wall, native), frequency, the scale
factors, and the bicriteria exchange rate — plus ``NUM`` for values that
are *known* to be dimensionless (a ratio of two times, a count).

``None`` everywhere means "unknown": the checker is deliberately
permissive, so an operation is flagged only when **both** sides carry a
known, incompatible dimension.  The algebra entry points
(:func:`add_result`, :func:`mul_result`, :func:`div_result`,
:func:`compat`) return a :class:`DimResult` carrying the resulting
dimension and, when the combination is dimensionally illegal, a
``(code, message)`` problem — ``REP010`` for cross-dimension mixing,
``REP011`` for wall/native-time and ``speed_scale`` misuse.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- kinds -------------------------------------------------------------
WATTS = "W"
JOULES = "J"
SECONDS = "s"          # flavorless duration
WALL_S = "wall-s"      # fleet wall clock
NATIVE_S = "native-s"  # a scaled node's own clock
HERTZ = "Hz"
SPEED = "speed-scale"
PSCALE = "power-scale"
SCALE = "scale"        # generic dimensionless multiplier
SPJ = "s/J"            # seconds per joule (MAKESPAN_ENERGY_RHO)
NUM = "number"         # known-dimensionless value

#: Time flavors; ``SECONDS`` is compatible with either specific flavor.
TIME_KINDS = frozenset({SECONDS, WALL_S, NATIVE_S})
#: Kinds that denote a physical quantity (mixing any two of these
#: across different groups in +/-/compare is a REP010).
PHYSICAL_KINDS = frozenset({WATTS, JOULES, HERTZ, SPJ}) | TIME_KINDS
#: Dimensionless multiplier kinds (mutually compatible).
SCALE_KINDS = frozenset({SPEED, PSCALE, SCALE})

_LABELS = {
    WATTS: "watts",
    JOULES: "joules",
    SECONDS: "seconds",
    WALL_S: "wall-seconds",
    NATIVE_S: "native-seconds",
    HERTZ: "hertz",
    SPEED: "speed_scale",
    PSCALE: "power_scale",
    SCALE: "a scale factor",
    SPJ: "seconds-per-joule",
    NUM: "a dimensionless number",
}


@dataclass(frozen=True)
class Dim:
    """One expression's dimension; ``pscaled`` marks a power/energy value
    that has already been multiplied by a node's ``power_scale``."""

    kind: str
    pscaled: bool = False

    @property
    def label(self) -> str:
        text = _LABELS[self.kind]
        if self.pscaled:
            return f"power_scale-adjusted {text}"
        return text


# Shared singletons (the checker compares kinds, never identities).
W = Dim(WATTS)
J = Dim(JOULES)
S = Dim(SECONDS)
WS = Dim(WALL_S)
NS = Dim(NATIVE_S)
HZ = Dim(HERTZ)
SPEED_D = Dim(SPEED)
PSCALE_D = Dim(PSCALE)
SCALE_D = Dim(SCALE)
SPJ_D = Dim(SPJ)
NUM_D = Dim(NUM)


@dataclass(frozen=True)
class DimResult:
    """Outcome of combining two dimensions: the result (``None`` when
    unknown) and an optional ``(rule_code, message)`` problem."""

    dim: Dim | None = None
    problem: tuple[str, str] | None = None


_OK = DimResult()


def _is_time(d: Dim) -> bool:
    return d.kind in TIME_KINDS


def compat(a: Dim | None, b: Dim | None, verb: str = "mixed with") -> DimResult:
    """May ``a`` and ``b`` legally meet in +, -, a comparison, min/max,
    or an assignment to a dimension-named target?

    ``verb`` completes the sentence ``"<a> <verb> <b>"`` in messages.
    Returns the merged dimension (the more specific of compatible time
    flavors) or a problem.  Unknown and ``NUM`` operands are compatible
    with everything.
    """
    if a is None or b is None:
        return DimResult(a or b)
    if a.kind == NUM or b.kind == NUM:
        return DimResult(a if b.kind == NUM else b)
    if a.kind == b.kind:
        return DimResult(a)
    if _is_time(a) and _is_time(b):
        if {a.kind, b.kind} == {WALL_S, NATIVE_S}:
            return DimResult(
                None,
                (
                    "REP011",
                    f"{a.label} {verb} {b.label}; convert with "
                    "wall_from_native(native_s, speed_scale) first",
                ),
            )
        # generic seconds meet a specific flavor: the flavor wins
        return DimResult(a if a.kind != SECONDS else b)
    if a.kind in SCALE_KINDS and b.kind in SCALE_KINDS:
        return DimResult(Dim(SCALE))
    return DimResult(
        None,
        (
            "REP010",
            f"{a.label} {verb} {b.label}",
        ),
    )


def mul_result(a: Dim | None, b: Dim | None) -> DimResult:
    """Dimension of ``a * b`` (commutative)."""
    if a is None or b is None:
        return _OK
    for x, y in ((a, b), (b, a)):
        if x.kind == NUM or x.kind == SCALE:
            return DimResult(y)
        if x.kind == WATTS and _is_time(y):
            return DimResult(Dim(JOULES, pscaled=x.pscaled))
        if x.kind == HERTZ and _is_time(y):
            return DimResult(NUM_D)
        if x.kind == JOULES and y.kind == SPJ:
            return DimResult(S)
        if x.kind == PSCALE and y.kind in (WATTS, JOULES):
            if y.pscaled:
                return DimResult(
                    Dim(y.kind, pscaled=True),
                    (
                        "REP010",
                        f"power_scale applied twice (the value is already {y.label})",
                    ),
                )
            return DimResult(Dim(y.kind, pscaled=True))
        if x.kind == SPEED and y.kind == WALL_S:
            return DimResult(NS)
        if x.kind == SPEED and y.kind == NATIVE_S:
            return DimResult(
                None,
                (
                    "REP011",
                    "native-seconds multiplied by speed_scale; wall ="
                    " native / speed_scale (use wall_from_native), and"
                    " only wall * speed_scale goes back to native",
                ),
            )
    return _OK


def div_result(a: Dim | None, b: Dim | None) -> DimResult:
    """Dimension of ``a / b`` (also used for ``//``)."""
    if b is not None and a is not None and a.kind == b.kind:
        return DimResult(NUM_D)
    if b is None:
        return _OK
    if b.kind in (NUM, SCALE):
        return DimResult(a)
    if a is None:
        return _OK
    if a.kind == JOULES and _is_time(b):
        return DimResult(Dim(WATTS, pscaled=a.pscaled))
    if a.kind == JOULES and b.kind == WATTS:
        return DimResult(S)
    if a.kind == NATIVE_S and b.kind == SPEED:
        return DimResult(WS)
    if a.kind == WALL_S and b.kind == SPEED:
        return DimResult(
            None,
            (
                "REP011",
                "wall-seconds divided by speed_scale again; this value was"
                " already converted from the node's native clock",
            ),
        )
    if a.kind == SECONDS and b.kind == SPEED:
        return DimResult(S)
    if a.kind in (WATTS, JOULES) and b.kind == PSCALE:
        return DimResult(Dim(a.kind, pscaled=False))
    if _is_time(a) and _is_time(b):
        return DimResult(NUM_D)
    return _OK
