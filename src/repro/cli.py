"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs one or more of the paper's experiments and prints their text
renderings.  ``all`` runs everything in paper order.  Uniform overrides
(``--seed``, ``--cap-w``, ``--executor``, ``--cache-dir``) apply to every
selected experiment whose driver supports them (see
:class:`repro.experiments.registry.ExperimentConfig`).

``python -m repro serve`` starts the online co-scheduling daemon instead
(see :mod:`repro.service`): it listens for newline-delimited JSON job
submissions, schedules them live, and reacts to power-cap events.

``python -m repro schedule`` computes one co-schedule from the command
line — any registry method, any objective (``--objective
makespan|energy|edp``) — and prints the queues plus predicted scores.

``python -m repro analyze`` runs the repo's static-analysis pack (the
REP001-REP006 AST lint rules of :mod:`repro.analysis.lint`) over source
trees and exits non-zero on violations — the same gate CI runs.

Exit codes: 0 success, 1 lint violations (``analyze``), 2
usage/infeasibility (an unknown experiment, or a power cap no frequency
setting can satisfy).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import InfeasibleCapError
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentConfig,
    run_experiment,
)
from repro.perf.diskcache import CACHE_DIR_ENV


def _serve_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the online co-scheduling daemon (newline-delimited JSON "
            "protocol; see docs/API.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks an ephemeral port (announced on stdout)",
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduler consulted when a processor idles (default: hcs)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="initial power cap in watts (changeable at runtime via set_cap)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="bounded submission queue size (backpressure beyond it)",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="profiling fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--objective", default="makespan",
        choices=("makespan", "energy", "edp"),
        help="what the daemon's scheduler optimizes (default: makespan)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic scheduling methods",
    )
    return parser


def _serve(argv: list[str]) -> int:
    from repro.service.server import serve

    args = _serve_parser().parse_args(argv)
    return serve(
        args.host,
        args.port,
        method=args.method,
        cap_w=args.cap_w,
        objective=args.objective,
        queue_capacity=args.queue_capacity,
        executor=args.executor,
        seed=args.seed,
    )


def _schedule_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro schedule",
        description=(
            "Compute one co-schedule for a set of calibrated programs and "
            "print the processor queues plus predicted scores."
        ),
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduling method from the registry (default: hcs)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="power cap in watts",
    )
    parser.add_argument(
        "--objective", default="makespan",
        choices=("makespan", "energy", "edp"),
        help="what the method optimizes (default: makespan)",
    )
    parser.add_argument(
        "--programs", default=None, metavar="NAMES",
        help="comma-separated calibrated program names (default: all eight)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic methods",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--backend", default="tensor", choices=("tensor", "scalar"),
        help="evaluation backend: precomputed tensors (default) or the "
        "scalar reference path; both give byte-identical results",
    )
    return parser


def _schedule(argv: list[str]) -> int:
    from repro.core.api import schedule
    from repro.workload import make_jobs, rodinia_programs

    args = _schedule_parser().parse_args(argv)
    programs = {p.name: p for p in rodinia_programs()}
    if args.programs is not None:
        names = [n.strip() for n in args.programs.split(",") if n.strip()]
        unknown = sorted(set(names) - set(programs))
        if unknown:
            print(
                f"unknown program(s): {', '.join(unknown)}; calibrated: "
                + ", ".join(sorted(programs)),
                file=sys.stderr,
            )
            return 2
        chosen = [programs[n] for n in names]
    else:
        chosen = list(programs.values())
    jobs = make_jobs(chosen)
    try:
        result = schedule(
            jobs,
            method=args.method,
            cap_w=args.cap_w,
            objective=args.objective,
            seed=args.seed,
            executor=args.executor,
            backend=args.backend,
        )
    except InfeasibleCapError as exc:
        cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
        print(f"infeasible power cap{cap}: {exc}", file=sys.stderr)
        return 2
    sched = result.schedule
    print(f"method    : {result.method}")
    print(f"objective : {result.objective.value}")
    print(f"cap_w     : {args.cap_w:g}")
    print("cpu queue : " + (
        " -> ".join(j.uid for j in sched.cpu_queue) or "(empty)"
    ))
    print("gpu queue : " + (
        " -> ".join(j.uid for j in sched.gpu_queue) or "(empty)"
    ))
    if sched.solo_tail:
        print("solo tail : " + ", ".join(
            f"{j.uid}@{k.name.lower()}" for j, k in sched.solo_tail
        ))
    print(f"predicted makespan_s : {result.predicted_makespan_s:.4f}")
    if result.objective.value != "makespan":
        unit = "J" if result.objective.value == "energy" else "J*s"
        print(
            f"predicted {result.objective.value}"
            f" : {result.predicted_score:.4f} {unit}"
        )
    return 0


def _analyze(argv: list[str]) -> int:
    from repro.analysis.lint.__main__ import main as lint_main

    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "schedule":
        return _schedule(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Co-Run Scheduling with "
            "Power Cap on Integrated CPU-GPU Systems' (IPDPS 2017), or run "
            "the online co-scheduling daemon ('repro serve --help')."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'; "
        "or the 'serve' / 'schedule' / 'analyze' subcommands",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only headline metrics"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the RNG seed of seed-aware experiments",
    )
    parser.add_argument(
        "--cap-w", type=float, default=None, dest="cap_w",
        help="override the power cap (watts) of cap-aware experiments",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--objective", default=None,
        choices=("makespan", "energy", "edp"),
        help="override the scheduling objective of objective-aware "
        "experiments",
    )
    parser.add_argument(
        "--cache-dir", default=None, dest="cache_dir", metavar="DIR",
        help=f"persist characterization/profiles to DIR (sets {CACHE_DIR_ENV})",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = args.cache_dir
    config = ExperimentConfig(
        seed=args.seed,
        cap_w=args.cap_w,
        executor=args.executor,
        objective=args.objective,
    )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    seen = set()
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is not None and driver in seen:  # fig5/fig6 share a driver
            continue
        if driver is not None:
            seen.add(driver)
        try:
            t0 = time.perf_counter()
            result = run_experiment(name, config=config)
            elapsed = time.perf_counter() - t0
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except InfeasibleCapError as exc:
            cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
            print(f"{name}: infeasible power cap{cap}: {exc}", file=sys.stderr)
            return 2
        if args.quiet:
            print(f"[{result.name}] " + "  ".join(
                f"{k}={v:.4g}" for k, v in result.headline.items()
            ))
        else:
            print(result.render())
            print(f"\n({name} completed in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
