"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs one or more of the paper's experiments and prints their text
renderings.  ``all`` runs everything in paper order.  Uniform overrides
(``--seed``, ``--cap-w``, ``--executor``, ``--cache-dir``) apply to every
selected experiment whose driver supports them (see
:class:`repro.experiments.registry.ExperimentConfig`).

``python -m repro serve`` starts the online co-scheduling daemon instead
(see :mod:`repro.service`): it listens for newline-delimited JSON job
submissions, schedules them live, and reacts to power-cap events.

Exit codes: 0 success, 2 usage/infeasibility (an unknown experiment, or a
power cap no frequency setting can satisfy).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import InfeasibleCapError
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentConfig,
    run_experiment,
)
from repro.perf.diskcache import CACHE_DIR_ENV


def _serve_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the online co-scheduling daemon (newline-delimited JSON "
            "protocol; see docs/API.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks an ephemeral port (announced on stdout)",
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduler consulted when a processor idles (default: hcs)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="initial power cap in watts (changeable at runtime via set_cap)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="bounded submission queue size (backpressure beyond it)",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="profiling fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic scheduling methods",
    )
    return parser


def _serve(argv: list[str]) -> int:
    from repro.service.server import serve

    args = _serve_parser().parse_args(argv)
    return serve(
        args.host,
        args.port,
        method=args.method,
        cap_w=args.cap_w,
        queue_capacity=args.queue_capacity,
        executor=args.executor,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Co-Run Scheduling with "
            "Power Cap on Integrated CPU-GPU Systems' (IPDPS 2017), or run "
            "the online co-scheduling daemon ('repro serve --help')."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'; "
        "or the 'serve' subcommand",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only headline metrics"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the RNG seed of seed-aware experiments",
    )
    parser.add_argument(
        "--cap-w", type=float, default=None, dest="cap_w",
        help="override the power cap (watts) of cap-aware experiments",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--cache-dir", default=None, dest="cache_dir", metavar="DIR",
        help=f"persist characterization/profiles to DIR (sets {CACHE_DIR_ENV})",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = args.cache_dir
    config = ExperimentConfig(
        seed=args.seed, cap_w=args.cap_w, executor=args.executor
    )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    seen = set()
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is not None and driver in seen:  # fig5/fig6 share a driver
            continue
        if driver is not None:
            seen.add(driver)
        try:
            t0 = time.perf_counter()
            result = run_experiment(name, config=config)
            elapsed = time.perf_counter() - t0
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except InfeasibleCapError as exc:
            cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
            print(f"{name}: infeasible power cap{cap}: {exc}", file=sys.stderr)
            return 2
        if args.quiet:
            print(f"[{result.name}] " + "  ".join(
                f"{k}={v:.4g}" for k, v in result.headline.items()
            ))
        else:
            print(result.render())
            print(f"\n({name} completed in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
