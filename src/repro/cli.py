"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs one or more of the paper's experiments and prints their text
renderings.  ``all`` runs everything in paper order.  Uniform overrides
(``--seed``, ``--cap-w``, ``--executor``, ``--cache-dir``) apply to every
selected experiment whose driver supports them (see
:class:`repro.experiments.registry.ExperimentConfig`).

``python -m repro serve`` starts the online co-scheduling daemon instead
(see :mod:`repro.service` and ``docs/SERVICE.md``): an asyncio front end
over tenant-sharded workers that listens for newline-delimited JSON job
submissions, schedules them live, reacts to power-cap events, and — with
``--durable`` — journals every transition through :mod:`repro.store` so
acknowledged work survives a crash.

``python -m repro schedule`` computes one co-schedule from the command
line — any registry method, any objective (``--objective
makespan|energy|edp|flow_time|makespan_energy``) — and prints the queues
plus predicted scores.  With ``--fleet-nodes`` the job set is placed and
scheduled across a heterogeneous fleet (see ``docs/FLEET.md``).

``python -m repro simulate`` schedules a job set and *executes* it on the
event-driven engine (:func:`repro.engine.run`) — fixed replay or an
open-system arrival trace with an online policy — printing measured
makespan, energy, and deadline misses (``--json`` emits the full
:class:`~repro.engine.sim.ExecutionResult` record).  ``--fleet-nodes``
executes across per-node simulators (:func:`repro.engine.run_fleet`).

``python -m repro analyze`` runs the repo's static-analysis pack (the
REP001-REP011 AST lint rules of :mod:`repro.analysis.lint`, including
the units-aware dims dataflow checker) over source trees and exits
non-zero on violations — the same gate CI runs.

Exit codes: 0 success, 1 lint violations (``analyze``), 2
usage/infeasibility (an unknown experiment, or a power cap no frequency
setting can satisfy).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import InfeasibleCapError
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentConfig,
    run_experiment,
)
from repro.perf.diskcache import CACHE_DIR_ENV

#: Every objective the registry understands (mirrors core.objectives).
_OBJECTIVES = ("makespan", "energy", "edp", "flow_time", "makespan_energy")


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fleet-nodes", default=None, dest="fleet_nodes", metavar="SPEC",
        help=(
            "heterogeneous fleet spec: comma-separated "
            "name[:speed[:power[:cap]]] descriptors (e.g. "
            "'big:2.0:1.3,small:0.6:0.5'), or a bare count for uniform "
            "nodes; capless nodes need --fleet-budget"
        ),
    )
    parser.add_argument(
        "--fleet-budget", type=float, default=None, dest="fleet_budget",
        metavar="W",
        help="shared fleet power budget in watts, split over capless nodes "
        "proportionally to their power rating",
    )


def _parse_fleet(args):
    """Resolve --fleet-nodes/--fleet-budget into a Fleet (or None)."""
    if args.fleet_nodes is None:
        if args.fleet_budget is not None:
            raise ValueError("--fleet-budget needs --fleet-nodes")
        return None
    from repro.core.fleet import Fleet

    return Fleet.parse(args.fleet_nodes, budget_w=args.fleet_budget)


def _serve_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the online co-scheduling daemon (newline-delimited JSON "
            "protocol; see docs/API.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks an ephemeral port (announced on stdout)",
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduler consulted when a processor idles (default: hcs)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="initial power cap in watts (changeable at runtime via set_cap)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="bounded submission queue size (backpressure beyond it)",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="profiling fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--objective", default="makespan", choices=_OBJECTIVES,
        help="what the daemon's scheduler optimizes (default: makespan)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic scheduling methods",
    )
    parser.add_argument(
        "--durable", default=None, metavar="DIR", dest="durable",
        help=(
            "directory for the durable job store (one SQLite event log per "
            "shard); acknowledged submissions survive a crash and are "
            "requeued on restart"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="independent scheduling shards; sessions route by tenant",
    )
    parser.add_argument(
        "--worker-mode", default="inline", choices=("inline", "process"),
        dest="worker_mode",
        help="run shards in the listener process or in worker processes",
    )
    parser.add_argument(
        "--backlog", type=int, default=0,
        help=(
            "per-tenant backlog capacity: acknowledged submissions held "
            "past queue capacity instead of backpressured (default: 0, off)"
        ),
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=None, dest="tenant_quota",
        help="max live (queued+held+running) jobs per tenant (default: none)",
    )
    _add_fleet_arguments(parser)
    return parser


def _serve(argv: list[str]) -> int:
    args = _serve_parser().parse_args(argv)
    from repro.service.async_server import serve_async

    try:
        fleet = _parse_fleet(args)
    except ValueError as exc:
        print(f"bad fleet spec: {exc}", file=sys.stderr)
        return 2
    return serve_async(
        args.host,
        args.port,
        method=args.method,
        cap_w=args.cap_w,
        objective=args.objective,
        queue_capacity=args.queue_capacity,
        executor=args.executor,
        seed=args.seed,
        shards=args.shards,
        worker_mode=args.worker_mode,
        durable_dir=args.durable,
        tenant_quota=args.tenant_quota,
        backlog_capacity=args.backlog,
        fleet=fleet,
    )


def _schedule_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro schedule",
        description=(
            "Compute one co-schedule for a set of calibrated programs and "
            "print the processor queues plus predicted scores."
        ),
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduling method from the registry (default: hcs)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="power cap in watts",
    )
    parser.add_argument(
        "--objective", default="makespan", choices=_OBJECTIVES,
        help="what the method optimizes (default: makespan)",
    )
    parser.add_argument(
        "--programs", default=None, metavar="NAMES",
        help="comma-separated calibrated program names (default: all eight)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic methods",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--backend", default="tensor", choices=("tensor", "scalar"),
        help="evaluation backend: precomputed tensors (default) or the "
        "scalar reference path; both give byte-identical results",
    )
    parser.add_argument(
        "--portfolio-members", default=None, metavar="NAMES",
        dest="portfolio_members",
        help="comma-separated member methods raced by --method portfolio "
        "(default: hcs,hcs+,genetic)",
    )
    parser.add_argument(
        "--portfolio-deadline", type=float, default=None, metavar="SECONDS",
        dest="portfolio_deadline",
        help="shared wall-clock budget for --method portfolio: members "
        "past the deadline are skipped (the first always runs)",
    )
    parser.add_argument(
        "--portfolio-eval-budget", type=int, default=None, metavar="N",
        dest="portfolio_eval_budget",
        help="shared schedule-evaluation budget for --method portfolio",
    )
    _add_fleet_arguments(parser)
    return parser


def _portfolio_opts(args) -> dict:
    """Portfolio budget options from CLI flags (only for that method)."""
    if args.method != "portfolio":
        for flag in ("portfolio_members", "portfolio_deadline",
                     "portfolio_eval_budget"):
            if getattr(args, flag) is not None:
                print(
                    f"--{flag.replace('_', '-')} requires --method portfolio",
                    file=sys.stderr,
                )
                raise SystemExit(2)
        return {}
    opts: dict = {}
    if args.portfolio_members is not None:
        opts["members"] = tuple(
            n.strip() for n in args.portfolio_members.split(",") if n.strip()
        )
    if args.portfolio_deadline is not None:
        opts["deadline_s"] = args.portfolio_deadline
    if args.portfolio_eval_budget is not None:
        opts["eval_budget"] = args.portfolio_eval_budget
    return opts


_SCORE_UNITS = {
    "makespan": "s",
    "energy": "J",
    "edp": "J*s",
    "flow_time": "s",
    "makespan_energy": "s + J",
}


def _schedule_fleet(args, jobs, fleet) -> int:
    """The --fleet-nodes branch of ``repro schedule``."""
    from repro.core.context import SchedulingContext
    from repro.core.fleetsched import fleet_schedule

    ctx = SchedulingContext.build(
        jobs,
        fleet=fleet,
        objective=args.objective,
        seed=args.seed,
        executor=args.executor,
        backend=args.backend,
    )
    result = fleet_schedule(ctx, method=args.method, **_portfolio_opts(args))
    print(f"method    : {result.method}")
    print(f"objective : {result.objective.value}")
    print("fleet     :")
    for line in fleet.describe().splitlines():
        print(f"  {line}")
    print(result.describe())
    print(f"predicted makespan_s : {result.predicted_makespan_s:.4f}")
    print(f"predicted energy_j   : {result.predicted_energy_j:.2f}")
    print(f"predicted flow_s     : {result.predicted_flow_s:.4f}")
    unit = _SCORE_UNITS[result.objective.value]
    print(f"predicted {result.objective.value}"
          f" : {result.predicted_score:.4f} {unit}")
    return 0


def _chosen_programs(spec: str | None):
    """Resolve a comma-separated program list (``None`` = all calibrated)."""
    from repro.workload import rodinia_programs

    programs = {p.name: p for p in rodinia_programs()}
    if spec is None:
        return list(programs.values())
    names = [n.strip() for n in spec.split(",") if n.strip()]
    unknown = sorted(set(names) - set(programs))
    if unknown:
        print(
            f"unknown program(s): {', '.join(unknown)}; calibrated: "
            + ", ".join(sorted(programs)),
            file=sys.stderr,
        )
        return None
    return [programs[n] for n in names]


def _schedule(argv: list[str]) -> int:
    from repro.core.api import schedule
    from repro.workload import make_jobs

    args = _schedule_parser().parse_args(argv)
    chosen = _chosen_programs(args.programs)
    if chosen is None:
        return 2
    jobs = make_jobs(chosen)
    try:
        fleet = _parse_fleet(args)
    except ValueError as exc:
        print(f"bad fleet spec: {exc}", file=sys.stderr)
        return 2
    if fleet is not None:
        try:
            return _schedule_fleet(args, jobs, fleet)
        except InfeasibleCapError as exc:
            cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
            print(f"infeasible power cap{cap}: {exc}", file=sys.stderr)
            return 2
    try:
        result = schedule(
            jobs,
            method=args.method,
            cap_w=args.cap_w,
            objective=args.objective,
            seed=args.seed,
            executor=args.executor,
            backend=args.backend,
            **_portfolio_opts(args),
        )
    except InfeasibleCapError as exc:
        cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
        print(f"infeasible power cap{cap}: {exc}", file=sys.stderr)
        return 2
    sched = result.schedule
    print(f"method    : {result.method}")
    if result.method == "portfolio":
        print(f"winner    : {result.details['winner']}")
        for name, entry in result.details["members"].items():
            parts = ", ".join(
                f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in entry.items()
            )
            print(f"  member {name}: {parts}")
    print(f"objective : {result.objective.value}")
    print(f"cap_w     : {args.cap_w:g}")
    print("cpu queue : " + (
        " -> ".join(j.uid for j in sched.cpu_queue) or "(empty)"
    ))
    print("gpu queue : " + (
        " -> ".join(j.uid for j in sched.gpu_queue) or "(empty)"
    ))
    if sched.solo_tail:
        print("solo tail : " + ", ".join(
            f"{j.uid}@{k.name.lower()}" for j, k in sched.solo_tail
        ))
    print(f"predicted makespan_s : {result.predicted_makespan_s:.4f}")
    if result.objective.value != "makespan":
        unit = _SCORE_UNITS[result.objective.value]
        print(
            f"predicted {result.objective.value}"
            f" : {result.predicted_score:.4f} {unit}"
        )
    return 0


def _simulate_parser() -> argparse.ArgumentParser:
    from repro.core.api import scheduler_names
    from repro.hardware.calibration import DEFAULT_POWER_CAP_W

    parser = argparse.ArgumentParser(
        prog="repro simulate",
        description=(
            "Schedule a job set and execute it on the event-driven engine "
            "(engine.run()): fixed co-schedule replay, or an open-system "
            "arrival trace placed by an online policy."
        ),
    )
    parser.add_argument(
        "--mode", default="fixed", choices=("fixed", "arrivals"),
        help="fixed: compute a co-schedule with --method and replay it; "
        "arrivals: jobs arrive every --arrive-every seconds and --policy "
        "places them (default: fixed)",
    )
    parser.add_argument(
        "--method", default="hcs", choices=scheduler_names(),
        help="scheduling method for fixed mode (default: hcs)",
    )
    parser.add_argument(
        "--policy", default="fifo", choices=("fifo", "hcs"),
        help="online placement policy for arrivals mode (default: fifo)",
    )
    parser.add_argument(
        "--cap-w", type=float, default=DEFAULT_POWER_CAP_W, dest="cap_w",
        help="power cap in watts",
    )
    parser.add_argument(
        "--objective", default="makespan", choices=_OBJECTIVES,
        help="scheduling objective (default: makespan)",
    )
    parser.add_argument(
        "--programs", default=None, metavar="NAMES",
        help="comma-separated calibrated program names (default: all eight)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed forwarded to stochastic methods",
    )
    parser.add_argument(
        "--backend", default="tensor", choices=("tensor", "scalar"),
        help="evaluation backend for the scheduling stage",
    )
    parser.add_argument(
        "--arrive-every", type=float, default=10.0, dest="arrive_every",
        metavar="S", help="inter-arrival gap in arrivals mode (default: 10)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-job relative deadline: each job must finish within S "
        "seconds of its arrival (misses are counted, not enforced)",
    )
    parser.add_argument(
        "--until-s", type=float, default=None, dest="until_s", metavar="S",
        help="stop the simulation at this virtual time (default: run to "
        "completion)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full ExecutionResult record as JSON",
    )
    _add_fleet_arguments(parser)
    return parser


def _simulate_fleet(args, jobs, fleet) -> int:
    """The --fleet-nodes branch of ``repro simulate`` (fixed mode)."""
    import json

    from repro.core.context import SchedulingContext
    from repro.engine import run_fleet

    if args.mode != "fixed":
        print(
            "--fleet-nodes currently supports --mode fixed only",
            file=sys.stderr,
        )
        return 2
    ctx = SchedulingContext.build(
        jobs,
        fleet=fleet,
        objective=args.objective,
        seed=args.seed,
        backend=args.backend,
    )
    execution = run_fleet(ctx, method=args.method)
    if args.json:
        print(json.dumps(execution.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"mode      : fixed ({args.method}), {len(fleet)} fleet nodes")
    print(f"fleet cap : {fleet.total_cap_w():g} W")
    print(f"jobs      : {len(jobs)}")
    for entry in execution.entries:
        print(
            f"  {entry.node:<8} makespan {entry.makespan_s:8.3f} s  "
            f"energy {entry.energy_j:9.2f} J  "
            f"({len(entry.result.completions)} jobs)"
        )
    print(f"makespan_s    : {execution.makespan_s:.4f}")
    print(f"energy_j      : {execution.energy_j:.2f}")
    print(f"flow_s        : {execution.flow_s:.4f}")
    print(
        f"{execution.objective:<14}: "
        f"{execution.score(execution.objective):.4f}"
    )
    return 0


def _simulate(argv: list[str]) -> int:
    import json
    import math

    from repro.core.api import schedule
    from repro.core.context import SchedulingContext
    from repro.core.online import FifoOnlinePolicy, HcsOnlinePolicy
    from repro.engine.sim import JobSpec, Scenario, run
    from repro.workload import make_jobs

    args = _simulate_parser().parse_args(argv)
    chosen = _chosen_programs(args.programs)
    if chosen is None:
        return 2
    jobs = make_jobs(chosen)
    until_s = math.inf if args.until_s is None else args.until_s

    try:
        fleet = _parse_fleet(args)
    except ValueError as exc:
        print(f"bad fleet spec: {exc}", file=sys.stderr)
        return 2
    if fleet is not None:
        try:
            return _simulate_fleet(args, jobs, fleet)
        except InfeasibleCapError as exc:
            cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
            print(f"infeasible power cap{cap}: {exc}", file=sys.stderr)
            return 2
    try:
        ctx = SchedulingContext.build(
            jobs,
            cap_w=args.cap_w,
            objective=args.objective,
            seed=args.seed,
            backend=args.backend,
        )
        if args.mode == "fixed":
            planned = schedule(
                jobs,
                method=args.method,
                cap_w=args.cap_w,
                objective=args.objective,
                predictor=ctx.predictor,
                seed=args.seed,
                backend=args.backend,
            )
            specs = tuple(
                JobSpec(job=j, arrival_s=0.0, deadline_s=args.deadline)
                for j in jobs
            ) if args.deadline is not None else ()
            scenario = Scenario.from_schedule(
                planned.schedule, jobs=specs, until_s=until_s
            )
            execution = run(ctx, scenario, governor=planned.governor)
        else:
            specs = tuple(
                JobSpec(
                    job=j,
                    arrival_s=i * args.arrive_every,
                    deadline_s=(
                        None
                        if args.deadline is None
                        else i * args.arrive_every + args.deadline
                    ),
                )
                for i, j in enumerate(jobs)
            )
            policy = (
                FifoOnlinePolicy()
                if args.policy == "fifo"
                else HcsOnlinePolicy(ctx.predictor, args.cap_w)
            )
            scenario = Scenario(jobs=specs, until_s=until_s)
            execution = run(ctx, scenario, policy=policy)
    except InfeasibleCapError as exc:
        cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
        print(f"infeasible power cap{cap}: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(execution.to_dict(), indent=2, sort_keys=True))
        return 0

    label = args.method if args.mode == "fixed" else f"online:{args.policy}"
    print(f"mode      : {args.mode} ({label})")
    print(f"cap_w     : {args.cap_w:g}")
    print(f"jobs      : {len(jobs)} ({len(execution.completions)} completed)")
    print(f"makespan_s    : {execution.makespan_s:.4f}")
    print(f"energy_j      : {execution.energy_j:.2f}")
    print(f"mean_power_w  : {execution.mean_power_w:.3f}")
    print(f"cpu_busy_s    : {execution.cpu_busy_s:.4f}")
    print(f"gpu_busy_s    : {execution.gpu_busy_s:.4f}")
    if args.deadline is not None:
        print(f"deadline miss : {execution.deadline_misses}")
        for miss in execution.violations:
            state = (
                "unfinished"
                if miss.finish_s is None
                else f"finished {miss.finish_s:.2f}s"
            )
            print(
                f"  {miss.job}: {state}, {miss.lateness_s:.2f}s late "
                f"(deadline {miss.deadline_s:g}s)"
            )
    return 0


def _analyze(argv: list[str]) -> int:
    from repro.analysis.lint.__main__ import main as lint_main

    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "schedule":
        return _schedule(argv[1:])
    if argv and argv[0] == "simulate":
        return _simulate(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Co-Run Scheduling with "
            "Power Cap on Integrated CPU-GPU Systems' (IPDPS 2017), or run "
            "the online co-scheduling daemon ('repro serve --help')."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'; "
        "or the 'serve' / 'schedule' / 'simulate' / 'analyze' subcommands",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only headline metrics"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the RNG seed of seed-aware experiments",
    )
    parser.add_argument(
        "--cap-w", type=float, default=None, dest="cap_w",
        help="override the power cap (watts) of cap-aware experiments",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--objective", default=None, choices=_OBJECTIVES,
        help="override the scheduling objective of objective-aware "
        "experiments",
    )
    parser.add_argument(
        "--cache-dir", default=None, dest="cache_dir", metavar="DIR",
        help=f"persist characterization/profiles to DIR (sets {CACHE_DIR_ENV})",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = args.cache_dir
    config = ExperimentConfig(
        seed=args.seed,
        cap_w=args.cap_w,
        executor=args.executor,
        objective=args.objective,
    )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    seen = set()
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is not None and driver in seen:  # fig5/fig6 share a driver
            continue
        if driver is not None:
            seen.add(driver)
        try:
            t0 = time.perf_counter()
            result = run_experiment(name, config=config)
            elapsed = time.perf_counter() - t0
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except InfeasibleCapError as exc:
            cap = f" (cap {exc.cap_w} W)" if exc.cap_w is not None else ""
            print(f"{name}: infeasible power cap{cap}: {exc}", file=sys.stderr)
            return 2
        if args.quiet:
            print(f"[{result.name}] " + "  ".join(
                f"{k}={v:.4g}" for k, v in result.headline.items()
            ))
        else:
            print(result.render())
            print(f"\n({name} completed in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
