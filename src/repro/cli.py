"""Command-line entry point: ``python -m repro <experiment> [...]``.

Runs one or more of the paper's experiments and prints their text
renderings.  ``all`` runs everything in paper order.  Uniform overrides
(``--seed``, ``--cap-w``, ``--executor``, ``--cache-dir``) apply to every
selected experiment whose driver supports them (see
:class:`repro.experiments.registry.ExperimentConfig`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentConfig,
    run_experiment,
)
from repro.perf.diskcache import CACHE_DIR_ENV


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Co-Run Scheduling with "
            "Power Cap on Integrated CPU-GPU Systems' (IPDPS 2017)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only headline metrics"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the RNG seed of seed-aware experiments",
    )
    parser.add_argument(
        "--cap-w", type=float, default=None, dest="cap_w",
        help="override the power cap (watts) of cap-aware experiments",
    )
    parser.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="evaluation fan-out backend: serial, threads[:N], processes[:N]",
    )
    parser.add_argument(
        "--cache-dir", default=None, dest="cache_dir", metavar="DIR",
        help=f"persist characterization/profiles to DIR (sets {CACHE_DIR_ENV})",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = args.cache_dir
    config = ExperimentConfig(
        seed=args.seed, cap_w=args.cap_w, executor=args.executor
    )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    seen = set()
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is not None and driver in seen:  # fig5/fig6 share a driver
            continue
        if driver is not None:
            seen.add(driver)
        try:
            t0 = time.perf_counter()
            result = run_experiment(name, config=config)
            elapsed = time.perf_counter() - t0
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.quiet:
            print(f"[{result.name}] " + "  ".join(
                f"{k}={v:.4g}" for k, v in result.headline.items()
            ))
        else:
            print(result.render())
            print(f"\n({name} completed in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
