"""repro — reproduction of "Co-Run Scheduling with Power Cap on Integrated
CPU-GPU Systems" (Zhu, Wu, Shen, Shen, Wang; IPDPS 2017).

The package implements, from scratch:

* an analytical simulator of an Ivy-Bridge-like integrated CPU-GPU
  processor (DVFS, power, shared-memory contention) — :mod:`repro.hardware`;
* an OpenCL-like workload substrate with the paper's tunable
  micro-benchmark and eight Rodinia-calibrated programs —
  :mod:`repro.workload`;
* a phase-resolved ground-truth execution engine — :mod:`repro.engine`;
* the paper's co-run performance/power predictor (micro-benchmark
  characterization + staged interpolation) — :mod:`repro.model`;
* the co-scheduling algorithms: Co-Run Theorem, HCS, HCS+ refinement, the
  makespan lower bound, and the Random/Default baselines with GPU-/CPU-
  biased power-cap policies — :mod:`repro.core`;
* one experiment driver per paper table/figure — :mod:`repro.experiments`
  (also runnable as ``python -m repro <experiment>``).

Quickstart::

    from repro import CoScheduleRuntime, make_jobs, rodinia_programs

    runtime = CoScheduleRuntime(make_jobs(rodinia_programs()), cap_w=15.0)
    hcs_plus = runtime.run_hcs(refine=True)
    baseline = runtime.random_average(n=20)
    print(f"speedup over Random: "
          f"{baseline.mean_makespan_s / hcs_plus.makespan_s:.2f}x")
"""

from repro.hardware import (
    DEFAULT_POWER_CAP_W,
    MODEL_POWER_CAP_W,
    FrequencySetting,
    IntegratedProcessor,
    make_ivy_bridge,
)
from repro.hardware.device import DeviceKind
from repro.workload import (
    Job,
    ProgramProfile,
    make_jobs,
    micro_benchmark,
    random_workload,
    rodinia_programs,
)
from repro.model import (
    CoRunPredictor,
    DegradationSpace,
    characterize_space,
    profile_workload,
)
from repro.core import (
    Bias,
    CoSchedule,
    CoScheduleRuntime,
    InfeasibleCapError,
    Objective,
    ScheduleOutcome,
    ScheduleResult,
    SchedulingContext,
    hcs_schedule,
    lower_bound,
    register_scheduler,
    schedule,
    scheduler_names,
)
from repro.perf import (
    CachingPredictor,
    DiskCache,
    EvalCache,
    ScheduleEvaluator,
    make_executor,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_POWER_CAP_W",
    "MODEL_POWER_CAP_W",
    "FrequencySetting",
    "IntegratedProcessor",
    "make_ivy_bridge",
    "DeviceKind",
    "Job",
    "ProgramProfile",
    "make_jobs",
    "micro_benchmark",
    "random_workload",
    "rodinia_programs",
    "CoRunPredictor",
    "DegradationSpace",
    "characterize_space",
    "profile_workload",
    "Bias",
    "CoSchedule",
    "CoScheduleRuntime",
    "ScheduleOutcome",
    "hcs_schedule",
    "lower_bound",
    "InfeasibleCapError",
    "Objective",
    "ScheduleResult",
    "SchedulingContext",
    "register_scheduler",
    "schedule",
    "scheduler_names",
    "CachingPredictor",
    "DiskCache",
    "EvalCache",
    "ScheduleEvaluator",
    "make_executor",
    "__version__",
]
