"""Dimension aliases and sanctioned unit conversions.

The whole contract of the reproduction is dimensional: power caps in
watts, energy in joules, makespans and flow times in seconds — and the
fleet layer added a *second* time dimension (a scaled node's **native**
seconds vs the fleet-wide **wall** clock, related by
``wall = native / speed_scale``) plus a power rescale (``power_scale``)
that every predictor, simulator, and service path must thread exactly
once.  A dropped ``/ speed_scale`` or a watts-vs-joules comparison is a
silent correctness bug until a cap happens to be violated at runtime.

This module is the vocabulary the static dimensional-analysis pass
(:mod:`repro.analysis.dims`, lint rules REP010/REP011) checks against:

* **Dimension aliases** — ``NewType``-style names for annotating
  signatures and dataclass fields.  They are plain ``float`` aliases
  (zero runtime cost, no call-site friction), but the dims checker reads
  the alias *names* in annotations and treats them as ground truth.
* **Conversion helpers** — the sanctioned ways to move between
  dimensions.  Each helper's body is itself dimension-checked, and the
  checker knows their signatures, so calling one with swapped or
  already-converted arguments is flagged at the call site.

Naming conventions the checker also understands (no annotation needed):
``*_w`` watts, ``*_j`` joules, ``*_s`` seconds (``wall``/``native`` in
the name selects the flavor), ``*_hz``/``*_ghz`` frequency,
``speed_scale``/``power_scale``/``*_scale`` scale factors, and
``MAKESPAN_ENERGY_RHO`` (seconds per joule).  See docs/ANALYSIS.md.
"""

from __future__ import annotations

from typing import TypeAlias

#: Instantaneous power, e.g. a chip draw, a node cap, a fleet budget.
Watts: TypeAlias = float

#: Energy, e.g. the predicted cost to complete a pair of jobs.
Joules: TypeAlias = float

#: A duration with no node-clock flavor attached (single-node world, or
#: code generic over the flavor).  Compatible with both flavors below.
Seconds: TypeAlias = float

#: Fleet-wide wall-clock seconds: what the fleet simulator, service
#: timeline, and cross-node comparisons run on.
WallSeconds: TypeAlias = float

#: A node's own clock: the calibrated APU's profiled seconds *before*
#: dividing by the node's ``speed_scale``.  Never compare or add these
#: against wall seconds — convert with :func:`wall_from_native`.
NativeSeconds: TypeAlias = float

#: Frequency (the DVFS level axis).  ``*_ghz`` names are the same
#: dimension; the checker does not track SI prefixes.
Hertz: TypeAlias = float

#: A dimensionless multiplier (generic).
Scale: TypeAlias = float

#: A node's throughput multiplier: ``wall = native / speed_scale``.
SpeedScale: TypeAlias = float

#: A node's power-rating multiplier: ``scaled_w = power_w * power_scale``.
PowerScale: TypeAlias = float

#: The bicriteria exchange rate of ``Objective.MAKESPAN_ENERGY``:
#: multiplying joules by it yields comparable seconds.
SecondsPerJoule: TypeAlias = float


# ----------------------------------------------------------------------
# Sanctioned conversions.  The dims checker knows these signatures; a
# call site mixing up the argument dimensions is flagged (REP010/REP011).
# ----------------------------------------------------------------------
def wall_from_native(native_s: NativeSeconds, speed_scale: SpeedScale) -> WallSeconds:
    """Convert a scaled node's native duration to wall-clock seconds."""
    return native_s / speed_scale


def native_from_wall(wall_s: WallSeconds, speed_scale: SpeedScale) -> NativeSeconds:
    """Convert a wall-clock duration back to a node's native clock."""
    return wall_s * speed_scale


def energy_j(power_w: Watts, dt_s: Seconds) -> Joules:
    """Energy of drawing ``power_w`` for ``dt_s`` (``W x s -> J``)."""
    return power_w * dt_s


def mean_power_w(total_j: Joules, dt_s: Seconds) -> Watts:
    """Average power over a window (``J / s -> W``)."""
    return total_j / dt_s


def duration_s(total_j: Joules, power_w: Watts) -> Seconds:
    """How long ``total_j`` lasts at a constant draw (``J / W -> s``)."""
    return total_j / power_w


def scaled_power_w(power_w: Watts, power_scale: PowerScale) -> Watts:
    """Apply a node's power rating to a calibrated-APU draw, exactly once."""
    return power_w * power_scale


def unscaled_power_w(scaled_w: Watts, power_scale: PowerScale) -> Watts:
    """Undo :func:`scaled_power_w` (back to calibrated-APU watts)."""
    return scaled_w / power_scale


__all__ = [
    "Hertz",
    "Joules",
    "NativeSeconds",
    "PowerScale",
    "Scale",
    "Seconds",
    "SecondsPerJoule",
    "SpeedScale",
    "WallSeconds",
    "Watts",
    "duration_s",
    "energy_j",
    "mean_power_w",
    "native_from_wall",
    "scaled_power_w",
    "unscaled_power_w",
    "wall_from_native",
]
