"""Durable job store: append-only event log, snapshots, crash recovery.

The store is the service tier's source of truth.  Every job state
transition (submitted -> admitted -> scheduled -> preempted/migrated ->
completed/rejected) is a typed event (:mod:`repro.store.events`) appended
to a replayable log (:mod:`repro.store.log`) *before* the client is
acknowledged; in-memory state is nothing but a fold over that log
(:mod:`repro.store.store`), so a ``kill -9`` at any instant loses at most
unacknowledged work.  Recovery = load the last snapshot, replay the
suffix.
"""

from repro.store.events import (
    CapChanged,
    ClockAdvanced,
    Event,
    JobAdmitted,
    JobCompleted,
    JobMigrated,
    JobPreempted,
    JobRejected,
    JobRequeued,
    JobScheduled,
    JobSubmitted,
    decode_event,
    encode_event,
)
from repro.store.log import EventLog, MemoryEventLog, SQLiteEventLog, open_log
from repro.store.store import (
    JobStore,
    StoreIntegrityError,
    StoredJob,
    StoreState,
)

__all__ = [
    "CapChanged",
    "ClockAdvanced",
    "Event",
    "EventLog",
    "JobAdmitted",
    "JobCompleted",
    "JobMigrated",
    "JobPreempted",
    "JobRejected",
    "JobRequeued",
    "JobScheduled",
    "JobStore",
    "JobSubmitted",
    "MemoryEventLog",
    "SQLiteEventLog",
    "StoreIntegrityError",
    "StoreState",
    "StoredJob",
    "decode_event",
    "encode_event",
    "open_log",
]
