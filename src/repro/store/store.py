"""The job store: a validated fold over the event log.

:class:`StoreState` is pure state — a dict of :class:`StoredJob` records
plus the cap/clock — and :meth:`StoreState.apply` is the *only* mutation
path, one event at a time, validating every transition against the job
lifecycle::

    submitted -> queued -> running -> done
         |          |         |-> preempted -> running (resume/migrate)
         |          `-> rejected (late cap change)
         `-> rejected (admission)

plus ``requeued`` (crash recovery returns an interrupted job to
``queued``).  An event that breaks the lifecycle raises
:class:`StoreIntegrityError` — a log that does not fold cleanly is
corrupt, and the store refuses to guess.

:class:`JobStore` wraps a state and a log: ``commit()`` applies events
and stages them, ``flush()`` group-commits the staged batch durably (the
service acknowledges clients only after the flush), and ``open()``
recovers state as snapshot + suffix replay.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.store.events import (
    CapChanged,
    ClockAdvanced,
    Event,
    JobAdmitted,
    JobCompleted,
    JobMigrated,
    JobPreempted,
    JobRejected,
    JobRequeued,
    JobScheduled,
    JobSubmitted,
)
from repro.store.log import EventLog, open_log

#: Lifecycle vocabulary (``StoredJob.state``).
SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
REJECTED = "rejected"

TERMINAL_STATES = frozenset({DONE, REJECTED})
LIVE_STATES = frozenset({SUBMITTED, QUEUED, RUNNING, PREEMPTED})


class StoreIntegrityError(RuntimeError):
    """An event that does not fold onto the current store state."""


@dataclass
class StoredJob:
    """Everything the store knows about one submission."""

    job_id: str
    program: str
    scale: float
    arrival_s: float
    tenant: str = "default"
    priority: int = 0
    idempotency_key: str | None = None
    objective: str | None = None
    state: str = SUBMITTED
    device: str | None = None
    cap_at_admit_w: float | None = None
    start_s: float | None = None
    finish_s: float | None = None
    energy_est_j: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class StoreState:
    """The fold target: jobs, idempotency index, cap, clock, counters."""

    jobs: dict[str, StoredJob] = field(default_factory=dict)
    idempotency: dict[str, str] = field(default_factory=dict)
    cap_w: float | None = None
    now_s: float = 0.0
    completed: int = 0
    rejected: int = 0

    # ------------------------------------------------------------------
    # The fold
    # ------------------------------------------------------------------
    def apply(self, event: Event) -> None:
        handler = self._APPLY.get(type(event))
        if handler is None:
            raise StoreIntegrityError(
                f"no fold rule for event {type(event).__name__}"
            )
        handler(self, event)

    def _job(self, job_id: str, event: Event) -> StoredJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise StoreIntegrityError(
                f"{type(event).__name__} for unknown job {job_id!r}"
            )
        return job

    def _require(self, job: StoredJob, allowed: frozenset[str], event: Event) -> None:
        if job.state not in allowed:
            raise StoreIntegrityError(
                f"{type(event).__name__} on job {job.job_id!r} in state "
                f"{job.state!r} (expected one of {sorted(allowed)})"
            )

    def _apply_submitted(self, e: JobSubmitted) -> None:
        if e.job_id in self.jobs:
            raise StoreIntegrityError(
                f"duplicate JobSubmitted for {e.job_id!r}"
            )
        if e.idempotency_key is not None:
            owner = self.idempotency.get(e.idempotency_key)
            if owner is not None:
                raise StoreIntegrityError(
                    f"idempotency key {e.idempotency_key!r} already owned "
                    f"by {owner!r}"
                )
            self.idempotency[e.idempotency_key] = e.job_id
        self.jobs[e.job_id] = StoredJob(
            job_id=e.job_id,
            program=e.program,
            scale=e.scale,
            arrival_s=e.arrival_s,
            tenant=e.tenant,
            priority=e.priority,
            idempotency_key=e.idempotency_key,
            objective=e.objective,
        )

    def _apply_admitted(self, e: JobAdmitted) -> None:
        job = self._job(e.job_id, e)
        self._require(job, frozenset({SUBMITTED}), e)
        job.state = QUEUED
        job.cap_at_admit_w = e.cap_w

    def _apply_scheduled(self, e: JobScheduled) -> None:
        job = self._job(e.job_id, e)
        self._require(job, frozenset({QUEUED, PREEMPTED}), e)
        job.state = RUNNING
        job.device = e.device
        if job.start_s is None:
            job.start_s = e.start_s

    def _apply_preempted(self, e: JobPreempted) -> None:
        job = self._job(e.job_id, e)
        self._require(job, frozenset({RUNNING}), e)
        job.state = PREEMPTED

    def _apply_migrated(self, e: JobMigrated) -> None:
        job = self._job(e.job_id, e)
        self._require(job, frozenset({RUNNING, PREEMPTED}), e)
        job.state = RUNNING
        job.device = e.dst

    def _apply_completed(self, e: JobCompleted) -> None:
        job = self._job(e.job_id, e)
        if job.state in TERMINAL_STATES:
            raise StoreIntegrityError(
                f"JobCompleted on terminal job {e.job_id!r} "
                f"(state {job.state!r}) — double completion"
            )
        self._require(job, frozenset({RUNNING}), e)
        job.state = DONE
        job.device = e.device
        job.start_s = e.start_s
        job.finish_s = e.finish_s
        job.energy_est_j = e.energy_est_j
        self.completed += 1

    def _apply_rejected(self, e: JobRejected) -> None:
        job = self._job(e.job_id, e)
        if job.state in TERMINAL_STATES:
            raise StoreIntegrityError(
                f"JobRejected on terminal job {e.job_id!r} "
                f"(state {job.state!r})"
            )
        job.state = REJECTED
        job.detail = e.message or e.code
        self.rejected += 1

    def _apply_requeued(self, e: JobRequeued) -> None:
        job = self._job(e.job_id, e)
        self._require(job, LIVE_STATES, e)
        job.state = QUEUED
        job.device = None

    def _apply_cap(self, e: CapChanged) -> None:
        if e.cap_w <= 0:
            raise StoreIntegrityError(f"non-positive cap {e.cap_w}")
        self.cap_w = e.cap_w

    def _apply_clock(self, e: ClockAdvanced) -> None:
        if e.now_s < self.now_s:
            raise StoreIntegrityError(
                f"clock moved backwards: {self.now_s} -> {e.now_s}"
            )
        self.now_s = e.now_s

    _APPLY = {
        JobSubmitted: _apply_submitted,
        JobAdmitted: _apply_admitted,
        JobScheduled: _apply_scheduled,
        JobPreempted: _apply_preempted,
        JobMigrated: _apply_migrated,
        JobCompleted: _apply_completed,
        JobRejected: _apply_rejected,
        JobRequeued: _apply_requeued,
        CapChanged: _apply_cap,
        ClockAdvanced: _apply_clock,
    }

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "jobs": {uid: job.as_dict() for uid, job in self.jobs.items()},
            "idempotency": dict(self.idempotency),
            "cap_w": self.cap_w,
            "now_s": self.now_s,
            "completed": self.completed,
            "rejected": self.rejected,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StoreState":
        return cls(
            jobs={
                uid: StoredJob(**job)
                for uid, job in payload.get("jobs", {}).items()
            },
            idempotency=dict(payload.get("idempotency", {})),
            cap_w=payload.get("cap_w"),
            now_s=float(payload.get("now_s", 0.0)),
            completed=int(payload.get("completed", 0)),
            rejected=int(payload.get("rejected", 0)),
        )

    def live_jobs(self) -> list[StoredJob]:
        return [j for j in self.jobs.values() if j.state in LIVE_STATES]


def fold(events, state: StoreState | None = None) -> StoreState:
    """Fold ``events`` onto ``state`` (a fresh one by default)."""
    out = state if state is not None else StoreState()
    for event in events:
        out.apply(event)
    return out


class JobStore:
    """State + log, with staged group commit and snapshot recovery.

    The write path is ``commit(*events)`` (validate + apply + stage)
    followed by ``flush()`` (durable append of the staged batch).  The
    service acknowledges a client only after the flush that covers its
    events, so an acknowledgement implies durability; a crash between
    commit and flush loses only never-acknowledged work.
    """

    def __init__(
        self,
        log: EventLog | None = None,
        *,
        snapshot_interval: int = 1024,
    ) -> None:
        self.log = log if log is not None else open_log(None)
        self.snapshot_interval = max(1, snapshot_interval)
        self.state = StoreState()
        self.applied_seq = 0
        self._pending: list[Event] = []
        self._since_snapshot = 0
        self._recover()

    @classmethod
    def open(
        cls,
        durable_dir: str | Path | None,
        shard: int = 0,
        *,
        snapshot_interval: int = 1024,
    ) -> "JobStore":
        """Open (and recover) the shard's store under ``durable_dir``."""
        return cls(
            open_log(durable_dir, shard), snapshot_interval=snapshot_interval
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        loaded = self.log.load_snapshot()
        if loaded is not None:
            self.applied_seq, payload = loaded
            self.state = StoreState.from_dict(payload)
        for seq, event in self.log.replay(self.applied_seq):
            self.state.apply(event)
            self.applied_seq = seq

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def commit(self, *events: Event) -> None:
        """Validate and apply ``events``; stage them for the next flush."""
        for event in events:
            self.state.apply(event)
            self._pending.append(event)

    def flush(self) -> None:
        """Group-commit every staged event; durable once this returns."""
        if self._pending:
            batch, self._pending = self._pending, []
            self.applied_seq = self.log.append_many(batch)
            self._since_snapshot += len(batch)
        # Auto-snapshots bound recovery replay time, which only matters
        # when the log survives the process; in-memory mode skips the
        # O(jobs) serialization on the submission path.
        if self.log.durable and self._since_snapshot >= self.snapshot_interval:
            self._save_snapshot()

    def snapshot(self) -> None:
        """Persist the current fold so recovery replays only a suffix."""
        self.flush()
        self._save_snapshot()

    def _save_snapshot(self) -> None:
        self.log.save_snapshot(self.applied_seq, self.state.to_dict())
        self._since_snapshot = 0

    def close(self) -> None:
        self.snapshot()
        self.log.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> StoredJob | None:
        return self.state.jobs.get(job_id)

    def idempotency_hit(self, key: str | None) -> StoredJob | None:
        """The job that already owns ``key``, if any."""
        if key is None:
            return None
        job_id = self.state.idempotency.get(key)
        return None if job_id is None else self.state.jobs.get(job_id)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.state.jobs

    def __len__(self) -> int:
        return len(self.state.jobs)
