"""Typed events of the durable job store.

One frozen dataclass per state transition, with a strict JSON codec.  The
event vocabulary *is* the store's write API: nothing mutates store state
except a fold over these records, so the log replays to the same state on
every machine and every restart.

The codec mirrors :mod:`repro.service.protocol` in spirit (discriminator
field, unknown/missing fields raise), but the envelope is internal — the
``kind`` discriminator plus the dataclass fields, JSON-encoded one event
per log row.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass


class EventCodecError(ValueError):
    """A log row that does not decode to a known event."""


@dataclass(frozen=True)
class JobSubmitted:
    """A submission passed protocol validation and entered the store.

    ``idempotency_key``, when given, makes the submission replay-safe:
    resubmitting the same key returns the original acknowledgement
    instead of creating a second job.
    """

    job_id: str
    program: str
    scale: float = 1.0
    arrival_s: float = 0.0
    tenant: str = "default"
    priority: int = 0
    idempotency_key: str | None = None
    objective: str | None = None


@dataclass(frozen=True)
class JobAdmitted:
    """Admission control accepted the job under the cap in force."""

    job_id: str
    cap_w: float


@dataclass(frozen=True)
class JobScheduled:
    """The engine started the job on a device."""

    job_id: str
    device: str
    start_s: float


@dataclass(frozen=True)
class JobPreempted:
    """The engine checkpointed the job off its device mid-run."""

    job_id: str
    device: str
    at_s: float


@dataclass(frozen=True)
class JobMigrated:
    """The job moved devices (checkpoint on one, restart on the other)."""

    job_id: str
    src: str
    dst: str
    at_s: float


@dataclass(frozen=True)
class JobCompleted:
    """The job finished; terminal."""

    job_id: str
    device: str
    start_s: float
    finish_s: float
    energy_est_j: float = 0.0


@dataclass(frozen=True)
class JobRejected:
    """The job was refused (admission or a late cap change); terminal."""

    job_id: str
    code: str
    message: str = ""


@dataclass(frozen=True)
class JobRequeued:
    """Crash recovery returned an interrupted job to the queue.

    A job that was running when the process died never completed; replay
    re-queues it so a fresh session can schedule it again.  ``reason``
    records why (always ``"recovery"`` today).
    """

    job_id: str
    reason: str = "recovery"


@dataclass(frozen=True)
class CapChanged:
    """The service power cap changed (now or at a future virtual time)."""

    cap_w: float
    at_s: float = 0.0


@dataclass(frozen=True)
class ClockAdvanced:
    """The session's virtual clock moved; recovery restores it."""

    now_s: float


Event = (
    JobSubmitted
    | JobAdmitted
    | JobScheduled
    | JobPreempted
    | JobMigrated
    | JobCompleted
    | JobRejected
    | JobRequeued
    | CapChanged
    | ClockAdvanced
)

EVENT_TYPES: dict[str, type] = {
    "submitted": JobSubmitted,
    "admitted": JobAdmitted,
    "scheduled": JobScheduled,
    "preempted": JobPreempted,
    "migrated": JobMigrated,
    "completed": JobCompleted,
    "rejected": JobRejected,
    "requeued": JobRequeued,
    "cap_changed": CapChanged,
    "clock": ClockAdvanced,
}

_KIND_OF = {cls: kind for kind, cls in EVENT_TYPES.items()}

#: Class -> field names: events are flat (atoms only), so encoding is one
#: getattr per field — ``dataclasses.asdict``'s recursive deepcopy showed
#: up in the service-throughput profile.
_FIELDS_OF = {
    cls: tuple(f.name for f in dataclasses.fields(cls))
    for cls in EVENT_TYPES.values()
}


def encode_event(event: Event) -> str:
    """Serialize one event to its JSON log row."""
    try:
        kind = _KIND_OF[type(event)]
        names = _FIELDS_OF[type(event)]
    except KeyError:
        raise EventCodecError(
            f"{type(event).__name__} is not a store event"
        ) from None
    payload = {"kind": kind}
    for name in names:
        payload[name] = getattr(event, name)
    return json.dumps(payload, separators=(",", ":"))


def decode_event(row: str | bytes) -> Event:
    """Parse one JSON log row back into its event dataclass."""
    if isinstance(row, bytes):
        row = row.decode("utf-8", errors="replace")
    try:
        payload = json.loads(row)
    except json.JSONDecodeError as exc:
        raise EventCodecError(f"log row is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise EventCodecError("log row must be a JSON object")
    kind = payload.pop("kind", None)
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise EventCodecError(f"unknown event kind {kind!r}") from None
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise EventCodecError(
            f"unknown field(s) for {cls.__name__}: {', '.join(sorted(unknown))}"
        )
    try:
        return cls(**payload)
    except (TypeError, ValueError) as exc:
        raise EventCodecError(f"bad {cls.__name__}: {exc}") from None
