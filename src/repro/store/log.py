"""Append-only event logs: durable (SQLite WAL) and in-memory.

Both backends share one contract:

* ``append_many(events)`` is atomic — after it returns, every event in the
  batch survives ``kill -9`` (group commit: the service acknowledges a
  client only after the batch commits);
* ``replay(after_seq)`` yields ``(seq, event)`` in append order;
* ``save_snapshot(seq, state)`` / ``load_snapshot()`` persist a fold of
  the log prefix up to ``seq``, so recovery replays only the suffix.

The SQLite backend runs in WAL mode with ``synchronous=NORMAL``: commits
are durable against process death (the failure mode the service defends
against — the e2e suite SIGKILLs it mid-burst) without paying an fsync
per acknowledgement.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.store.events import Event, decode_event, encode_event


class EventLog:
    """Interface shared by the durable and in-memory backends."""

    #: Whether rows survive process death.  The store only *auto*-snapshots
    #: durable logs: a snapshot of an in-memory log cannot outlive the
    #: process, so taking one every N events is pure O(jobs) overhead on
    #: the submission path (explicit ``snapshot()`` calls still work).
    durable = False

    def append(self, event: Event) -> int:
        return self.append_many([event])

    def append_many(self, events: Iterable[Event]) -> int:
        raise NotImplementedError

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, Event]]:
        raise NotImplementedError

    @property
    def last_seq(self) -> int:
        raise NotImplementedError

    def save_snapshot(self, seq: int, state: dict) -> None:
        raise NotImplementedError

    def load_snapshot(self) -> tuple[int, dict] | None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemoryEventLog(EventLog):
    """Ephemeral log for tests and non-durable daemons.

    Same semantics as the SQLite backend minus persistence, so one code
    path in the store serves both modes.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._snapshot: tuple[int, dict] | None = None

    def append_many(self, events: Iterable[Event]) -> int:
        self._events.extend(events)
        return len(self._events)

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, Event]]:
        for seq in range(after_seq, len(self._events)):
            yield seq + 1, self._events[seq]

    @property
    def last_seq(self) -> int:
        return len(self._events)

    def save_snapshot(self, seq: int, state: dict) -> None:
        # Round-trip through JSON so both backends impose the same
        # "snapshot must be JSON-serializable" contract.
        self._snapshot = (seq, json.loads(json.dumps(state)))

    def load_snapshot(self) -> tuple[int, dict] | None:
        if self._snapshot is None:
            return None
        seq, state = self._snapshot
        return seq, json.loads(json.dumps(state))


class SQLiteEventLog(EventLog):
    """Durable log: one SQLite file, WAL journal, group commit."""

    durable = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # The service tier serializes writers behind its own lock, but the
        # threaded legacy server may hand requests to the state from any
        # worker thread — let the connection cross threads and serialize
        # here.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._lock = threading.Lock()
        cur = self._conn.cursor()
        cur.execute("PRAGMA journal_mode=WAL")
        cur.execute("PRAGMA synchronous=NORMAL")
        cur.execute(
            "CREATE TABLE IF NOT EXISTS events ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " payload TEXT NOT NULL)"
        )
        cur.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " id INTEGER PRIMARY KEY CHECK (id = 1),"
            " seq INTEGER NOT NULL,"
            " state TEXT NOT NULL)"
        )
        self._conn.commit()

    def append_many(self, events: Iterable[Event]) -> int:
        rows = [(encode_event(e),) for e in events]
        with self._lock:
            cur = self._conn.cursor()
            cur.executemany("INSERT INTO events (payload) VALUES (?)", rows)
            self._conn.commit()
            # lastrowid is unspecified after executemany; ask the table.
            row = self._conn.execute("SELECT MAX(seq) FROM events").fetchone()
            return int(row[0] or 0)

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, Event]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, payload FROM events WHERE seq > ? ORDER BY seq",
                (after_seq,),
            ).fetchall()
        for seq, payload in rows:
            yield int(seq), decode_event(payload)

    @property
    def last_seq(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT MAX(seq) FROM events").fetchone()
        return int(row[0] or 0)

    def save_snapshot(self, seq: int, state: dict) -> None:
        blob = json.dumps(state, separators=(",", ":"))
        with self._lock:
            self._conn.execute(
                "INSERT INTO snapshots (id, seq, state) VALUES (1, ?, ?)"
                " ON CONFLICT (id) DO UPDATE SET seq=excluded.seq,"
                " state=excluded.state",
                (seq, blob),
            )
            self._conn.commit()

    def load_snapshot(self) -> tuple[int, dict] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT seq, state FROM snapshots WHERE id = 1"
            ).fetchone()
        if row is None:
            return None
        return int(row[0]), json.loads(row[1])

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()


def open_log(durable_dir: str | Path | None, shard: int = 0) -> EventLog:
    """One log per shard: ``<dir>/shard-<n>.sqlite``, or in-memory."""
    if durable_dir is None:
        return MemoryEventLog()
    return SQLiteEventLog(Path(durable_dir) / f"shard-{shard}.sqlite")
