"""Thin setup shim.

The project metadata lives in pyproject.toml; this file exists so the
package remains installable with legacy tooling (``pip install -e .`` in
environments without the ``wheel`` package, e.g. offline boxes).
"""

from setuptools import setup

setup()
